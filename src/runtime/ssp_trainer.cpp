#include "runtime/ssp_trainer.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "engine/simulation.hpp"
#include "util/error.hpp"

namespace hgc {

SspTrainingResult train_ssp(const Cluster& cluster, const Model& model,
                            const Dataset& data,
                            const SspTrainingConfig& config) {
  const std::size_t m = cluster.size();
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  HGC_REQUIRE(config.learning_rate > 0.0, "learning rate must be positive");
  HGC_REQUIRE(config.record_every > 0, "record_every must be positive");

  const auto shards = config.shards.empty()
                          ? partition_rows(data.size(), m)
                          : config.shards;
  HGC_REQUIRE(shards.size() == m, "need exactly one shard per worker");
  for (const auto& shard : shards)
    HGC_REQUIRE(!shard.empty(), "every worker needs at least one row");
  Rng condition_rng(config.seed + 0x79b9);
  Rng init_rng(config.seed + 0x1111);

  Vector params = model.init_params(init_rng);
  // Per-push learning rate: m pushes with shard-mean gradients approximate
  // one full-batch step with the nominal rate.
  const double push_lr =
      config.learning_rate / static_cast<double>(m);

  // Worker state. SSP is a free-running protocol, so unlike the BSP round
  // (engine::run_round) there is no per-iteration barrier: every worker
  // keeps its own clock on one long-lived event loop.
  std::vector<std::size_t> clock(m, 0);
  std::vector<Vector> snapshot(m);          // params seen at pull time
  std::vector<bool> blocked(m, false);
  engine::Simulation sim;

  // Per-worker-step condition draw. SSP has no global iteration, so the
  // straggler model is applied marginally: each step is delayed with
  // probability num_stragglers/m; a "fault" becomes a long stall (the VM
  // restarts) rather than a permanent loss, since a permanently dead worker
  // would pin min_clock and deadlock every SSP variant.
  const StragglerModel& sm = config.straggler_model;
  const double victim_probability =
      m == 0 ? 0.0
             : static_cast<double>(sm.num_stragglers) / static_cast<double>(m);
  auto compute_duration = [&](WorkerId w) {
    double factor = 1.0;
    if (sm.fluctuation_sigma > 0.0) {
      const double eps = condition_rng.truncated_normal(
          0.0, sm.fluctuation_sigma, -3.0 * sm.fluctuation_sigma,
          3.0 * sm.fluctuation_sigma);
      factor = std::max(0.05, 1.0 + eps);
    }
    const double rate = cluster.worker(w).throughput * factor;
    const double share = static_cast<double>(shards[w].size()) /
                         static_cast<double>(data.size());
    const double base = share / rate;
    double delay = 0.0;
    if (sm.num_stragglers > 0 &&
        condition_rng.bernoulli(std::min(1.0, victim_probability)))
      delay = sm.fault ? 50.0 * base : sm.delay_seconds;
    return base + delay + config.comm_latency;
  };

  const std::size_t total_pushes = config.iterations * m;
  std::size_t pushes = 0;
  std::size_t blocked_events = 0;
  double spread_sum = 0.0;

  SspTrainingResult result;
  result.trace.label = "ssp";
  result.trace.points.push_back({0.0, mean_loss(model, data, params), 0});

  Vector grad(model.num_params());
  std::function<void(WorkerId)> on_push_complete;
  // Tag = worker id: simultaneous finishes pop in worker order, exactly the
  // (time, worker) comparator of the trainer's old private priority queue.
  auto start_worker = [&](WorkerId w) {
    snapshot[w] = params;  // pull
    sim.schedule_after(compute_duration(w), [&, w] { on_push_complete(w); },
                       w);
  };

  on_push_complete = [&](WorkerId w) {
    // Push: gradient of w's shard at the parameters w pulled (stale).
    std::fill(grad.begin(), grad.end(), 0.0);
    model.loss_and_gradient(data, shards[w], snapshot[w], grad);
    const double inv_shard =
        1.0 / static_cast<double>(std::max<std::size_t>(shards[w].size(), 1));
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= push_lr * inv_shard * grad[i];
    ++clock[w];
    ++pushes;

    const std::size_t min_clock =
        *std::min_element(clock.begin(), clock.end());
    const std::size_t max_clock =
        *std::max_element(clock.begin(), clock.end());
    spread_sum += static_cast<double>(max_clock - min_clock);

    if (pushes % (m * config.record_every) == 0 || pushes == total_pushes)
      result.trace.points.push_back(
          {sim.now(), mean_loss(model, data, params), pushes / m});

    // Restart w unless the staleness bound blocks it.
    if (clock[w] - min_clock > config.staleness) {
      blocked[w] = true;
      ++blocked_events;
    } else {
      start_worker(w);
    }
    // min_clock may have advanced: release any blocked workers now inside
    // the staleness window.
    for (WorkerId other = 0; other < m; ++other) {
      if (blocked[other] && clock[other] - min_clock <= config.staleness) {
        blocked[other] = false;
        start_worker(other);
      }
    }
  };

  for (WorkerId w = 0; w < m; ++w) start_worker(w);
  while (pushes < total_pushes && sim.step()) {
  }

  result.mean_clock_spread =
      pushes ? spread_sum / static_cast<double>(pushes) : 0.0;
  result.blocked_fraction =
      pushes ? static_cast<double>(blocked_events) /
                   static_cast<double>(pushes)
             : 0.0;
  result.final_accuracy =
      model.accuracy(data, all_rows(data.size()), params);
  result.final_params = std::move(params);
  return result;
}

}  // namespace hgc
