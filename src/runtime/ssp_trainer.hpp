// Stale Synchronous Parallel (SSP) baseline for Fig. 4.
//
// The paper compares its BSP coded schemes against SSP [17] on heterogeneous
// clusters and observes two failure modes we reproduce: (1) with a bounded
// staleness threshold, fast workers block on the slowest worker's clock
// almost every step, collapsing toward BSP synchronization cost; (2) the
// parameter server receives unbalanced contributions (fast workers push many
// more updates about their own shards), hurting convergence.
//
// The trainer is an event-driven simulation with real gradient computations:
// each worker repeatedly pulls the current parameters, computes the gradient
// of its own data shard (time drawn from its throughput and fluctuation),
// pushes an update, and may only run ahead of the slowest worker by
// `staleness` clocks.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "ml/gradient.hpp"
#include "ml/model.hpp"
#include "runtime/loss_trace.hpp"

namespace hgc {

/// SSP hyperparameters.
struct SspTrainingConfig {
  /// Staleness bound: a worker at clock c blocks until c − min_clock ≤ this.
  std::size_t staleness = 3;
  /// Per-update learning rate; scaled by 1/m so that m pushes approximate
  /// one full-batch BSP step.
  double learning_rate = 0.1;
  /// Total update budget expressed in "epoch equivalents": the run stops
  /// after iterations·m worker pushes, matching the gradient work of the
  /// same number of BSP iterations.
  std::size_t iterations = 100;
  StragglerModel straggler_model;
  double comm_latency = 0.0;
  std::uint64_t seed = 42;
  std::size_t record_every = 1;  ///< trace sampling stride, in epochs
  /// Optional explicit data shards (one per worker); empty = contiguous even
  /// split. Use dirichlet_partition_rows / sort_by_label to study SSP under
  /// non-IID data (unbalanced contributions, the paper's Fig. 4 argument).
  std::vector<std::vector<std::size_t>> shards;
};

/// Outcome of an SSP run.
struct SspTrainingResult {
  LossTrace trace;
  Vector final_params;
  double final_accuracy = 0.0;
  /// Mean over time of (max clock − min clock): how unevenly workers
  /// progressed; large values = heavy staleness pressure.
  double mean_clock_spread = 0.0;
  /// Fraction of scheduling decisions where a worker was staleness-blocked.
  double blocked_fraction = 0.0;
};

/// Run SSP on `cluster`, sharding `data` evenly across workers.
SspTrainingResult train_ssp(const Cluster& cluster, const Model& model,
                            const Dataset& data,
                            const SspTrainingConfig& config);

}  // namespace hgc
