// Virtual-clock BSP training (the coded curves of Fig. 4).
//
// Every iteration runs the full coded pipeline with *real* gradients — each
// worker's coded message is a genuine linear combination of its partition
// gradients at the current parameters, the master combines the messages that
// had arrived at the simulated decode time — while the clock advances by the
// simulator's iteration time. BSP exactness means every scheme follows the
// same loss-per-iteration path; schemes differ in how fast the clock moves,
// which is precisely the effect Fig. 4 plots.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_factory.hpp"
#include "ml/gradient.hpp"
#include "ml/model.hpp"
#include "ml/sgd.hpp"
#include "runtime/loss_trace.hpp"
#include "sim/iteration.hpp"

namespace hgc {

/// Configuration for a virtual-time BSP training run.
struct BspTrainingConfig {
  std::size_t iterations = 100;
  SgdOptions sgd;
  StragglerModel straggler_model;
  SimParams sim;
  double estimation_sigma = 0.0;  ///< throughput-estimate error for the code
  std::uint64_t seed = 42;
  std::size_t record_every = 1;   ///< trace sampling stride (iterations)
};

/// Outcome of a BSP run.
struct BspTrainingResult {
  LossTrace trace;
  Vector final_params;
  std::size_t failed_iterations = 0;  ///< undecodable (clock stalls forever)
  double final_accuracy = 0.0;
};

/// Train `model` on `data` under `kind`'s coding scheme on `cluster` with k
/// partitions and straggler tolerance s.
BspTrainingResult train_bsp_coded(SchemeKind kind, const Cluster& cluster,
                                  const Model& model, const Dataset& data,
                                  std::size_t k, std::size_t s,
                                  const BspTrainingConfig& config);

/// Serial single-machine SGD reference: identical parameter trajectory to
/// any decodable BSP coded run (the exactness property tests rely on).
BspTrainingResult train_serial(const Model& model, const Dataset& data,
                               const BspTrainingConfig& config);

/// The *approximate* straggler-ignoring baseline the paper declines to use
/// ([35]/[36]: "at the cost of sacrificing optimization accuracy"): uncoded
/// even allocation, the master sums whichever m−s shard gradients arrive
/// first and rescales by the covered sample count. Fast — it never waits for
/// stragglers and carries zero redundancy — but each update is a biased
/// subsample gradient, so the loss path deviates from exact SGD (and under
/// non-IID shards the bias is systematic). Included for the accuracy-vs-time
/// trade-off ablation.
BspTrainingResult train_bsp_ignore_stragglers(
    const Cluster& cluster, const Model& model, const Dataset& data,
    std::size_t s, const BspTrainingConfig& config);

}  // namespace hgc
