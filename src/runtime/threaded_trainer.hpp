// Real-thread BSP coded training: one OS thread per worker, a blocking
// channel to the master, genuine gradient computation and encoding on the
// workers, streaming decode on the master.
//
// Heterogeneity and stragglers are physically realized: each worker sleeps
// for its simulated compute duration (scaled by `time_scale` so tests stay
// fast), then does the real math. Faulted workers stay silent for the
// iteration. The master decodes from the earliest decodable arrival set —
// the same protocol the paper deployed on QingCloud, shrunk onto threads.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/coding_scheme.hpp"
#include "ml/gradient.hpp"
#include "ml/model.hpp"
#include "ml/sgd.hpp"
#include "runtime/loss_trace.hpp"

namespace hgc {

/// Configuration for the threaded runtime.
struct ThreadedTrainingConfig {
  std::size_t iterations = 10;
  SgdOptions sgd;
  StragglerModel straggler_model;
  /// Wall seconds of sleep per simulated second (1e-3 → a 1 s simulated
  /// iteration sleeps 1 ms). 0 disables the physical delay entirely.
  double time_scale = 1e-3;
  std::uint64_t seed = 42;
};

/// Outcome of a threaded run.
struct ThreadedTrainingResult {
  LossTrace trace;              ///< wall-clock timestamps
  Vector final_params;
  std::size_t results_discarded = 0;  ///< stale arrivals from past iterations
  double final_accuracy = 0.0;
};

/// Run BSP coded training with real threads. The scheme determines both the
/// data layout and the coding; `cluster` supplies the simulated speeds.
ThreadedTrainingResult train_bsp_threaded(const CodingScheme& scheme,
                                          const Cluster& cluster,
                                          const Model& model,
                                          const Dataset& data,
                                          const ThreadedTrainingConfig& config);

}  // namespace hgc
