#include "runtime/threaded_trainer.hpp"

#include <chrono>
#include <thread>

#include "core/decoder.hpp"
#include "runtime/channel.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace hgc {
namespace {

/// State the master publishes to workers at each iteration boundary.
struct Broadcast {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t iteration = 0;  // 0 = before the first iteration
  bool stop = false;
  Vector params;
  IterationConditions conditions;
};

struct WorkerResult {
  WorkerId worker;
  std::size_t iteration;
  Vector coded;
};

void worker_loop(WorkerId w, const CodingScheme& scheme,
                 const Cluster& cluster, const Model& model,
                 const Dataset& data,
                 const std::vector<std::vector<std::size_t>>& partitions,
                 const ThreadedTrainingConfig& config, Broadcast& bcast,
                 Channel<WorkerResult>& results) {
  const std::size_t k = scheme.num_partitions();
  const auto& mine = scheme.assignment()[w];
  std::size_t last_done = 0;
  Vector params;

  while (true) {
    double speed = 1.0, delay = 0.0;
    bool faulted = false;
    std::size_t iteration = 0;
    {
      std::unique_lock lock(bcast.mutex);
      bcast.cv.wait(lock, [&] {
        return bcast.stop || bcast.iteration != last_done;
      });
      if (bcast.stop) return;
      iteration = bcast.iteration;
      params = bcast.params;  // snapshot under the lock
      speed = bcast.conditions.speed_factor[w];
      delay = bcast.conditions.delay[w];
      faulted = bcast.conditions.faulted[w];
    }
    last_done = iteration;
    if (faulted || mine.empty()) continue;  // silent this round

    // Real compute: partial gradients over this worker's partitions.
    std::vector<Vector> grads(k);
    for (PartitionId p : mine)
      grads[p] = partition_gradient(model, data, partitions[p], params);

    // Physically realize the simulated heterogeneity/delay.
    if (config.time_scale > 0.0) {
      const double share =
          static_cast<double>(mine.size()) / static_cast<double>(k);
      const double simulated =
          share / (cluster.worker(w).throughput * speed) + delay;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(simulated * config.time_scale));
    }

    results.send({w, iteration, encode_gradient(scheme, w, grads)});
  }
}

}  // namespace

ThreadedTrainingResult train_bsp_threaded(
    const CodingScheme& scheme, const Cluster& cluster, const Model& model,
    const Dataset& data, const ThreadedTrainingConfig& config) {
  const std::size_t m = scheme.num_workers();
  HGC_REQUIRE(cluster.size() == m, "cluster size must match scheme");
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  // A fault pattern wider than the provisioned tolerance would deadlock the
  // master (it waits for a decodable set that can never arrive).
  if (config.straggler_model.fault)
    HGC_REQUIRE(
        config.straggler_model.num_stragglers <= scheme.stragglers_tolerated(),
        "faulted workers would exceed the scheme's straggler tolerance");

  const auto partitions =
      partition_rows(data.size(), scheme.num_partitions());

  Rng condition_rng(config.seed + 0x79b9);
  Rng init_rng(config.seed + 0x1111);
  Vector params = model.init_params(init_rng);
  SgdOptimizer optimizer(config.sgd, params.size());
  const double inv_n = 1.0 / static_cast<double>(data.size());

  Broadcast bcast;
  Channel<WorkerResult> results;
  std::vector<std::thread> workers;
  workers.reserve(m);
  for (WorkerId w = 0; w < m; ++w)
    workers.emplace_back(worker_loop, w, std::cref(scheme),
                         std::cref(cluster), std::cref(model),
                         std::cref(data), std::cref(partitions),
                         std::cref(config), std::ref(bcast),
                         std::ref(results));

  ThreadedTrainingResult result;
  result.trace.label = scheme.name() + "+threads";
  Stopwatch wall;
  result.trace.points.push_back({0.0, mean_loss(model, data, params), 0});

  for (std::size_t iter = 1; iter <= config.iterations; ++iter) {
    {
      std::lock_guard lock(bcast.mutex);
      bcast.iteration = iter;
      bcast.params = params;
      bcast.conditions = config.straggler_model.draw(m, condition_rng);
    }
    bcast.cv.notify_all();

    StreamingDecoder decoder(scheme);
    while (!decoder.ready()) {
      auto msg = results.receive();
      HGC_ASSERT(msg.has_value(), "result channel closed mid-iteration");
      if (msg->iteration != iter) {
        ++result.results_discarded;  // straggler from a previous round
        continue;
      }
      decoder.add_result(msg->worker, std::move(msg->coded));
    }
    Vector aggregate = decoder.aggregate();
    scale(inv_n, aggregate);
    optimizer.step(params, aggregate);
    result.trace.points.push_back(
        {wall.seconds(), mean_loss(model, data, params), iter});
  }

  {
    std::lock_guard lock(bcast.mutex);
    bcast.stop = true;
  }
  bcast.cv.notify_all();
  results.close();
  for (std::thread& t : workers) t.join();

  result.final_accuracy =
      model.accuracy(data, all_rows(data.size()), params);
  result.final_params = std::move(params);
  return result;
}

}  // namespace hgc
