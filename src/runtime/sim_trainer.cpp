#include "runtime/sim_trainer.hpp"

#include <algorithm>

#include "core/coding_scheme.hpp"
#include "util/error.hpp"

namespace hgc {

BspTrainingResult train_bsp_coded(SchemeKind kind, const Cluster& cluster,
                                  const Model& model, const Dataset& data,
                                  std::size_t k, std::size_t s,
                                  const BspTrainingConfig& config) {
  const std::size_t m = cluster.size();
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  HGC_REQUIRE(config.record_every > 0, "record_every must be positive");

  Rng construction_rng(config.seed);
  Rng estimation_rng(config.seed + 0x9e37);
  Rng condition_rng(config.seed + 0x79b9);

  const Throughputs truth = cluster.throughputs();
  const Throughputs estimated =
      estimate_throughputs(truth, config.estimation_sigma, estimation_rng);
  const auto scheme = make_scheme(kind, estimated, k, s, construction_rng);
  // Baselines choose their own partition count (naive/cyclic use k = m).
  const std::size_t scheme_k = scheme->num_partitions();
  const auto partitions = partition_rows(data.size(), scheme_k);

  Rng init_rng(config.seed + 0x1111);
  Vector params = model.init_params(init_rng);
  SgdOptimizer optimizer(config.sgd, params.size());
  const double inv_n = 1.0 / static_cast<double>(data.size());

  BspTrainingResult result;
  result.trace.label = scheme->name();
  double clock = 0.0;
  result.trace.points.push_back({0.0, mean_loss(model, data, params), 0});

  for (std::size_t iter = 1; iter <= config.iterations; ++iter) {
    const IterationConditions conditions =
        config.straggler_model.draw(m, condition_rng);
    const IterationResult sim_result =
        simulate_iteration(*scheme, cluster, conditions, config.sim);
    if (!sim_result.decoded) {
      // The iteration never completes (e.g. naive + fault): the clock would
      // stall forever, so the run ends here.
      ++result.failed_iterations;
      break;
    }
    clock += sim_result.time;

    // Real coded exchange: partition gradients -> worker encodings ->
    // master combination with the decode-time coefficients.
    const auto grads =
        all_partition_gradients(model, data, partitions, params);
    std::vector<Vector> coded(m);
    const Vector& coefficients = *sim_result.coefficients;
    for (WorkerId w = 0; w < m; ++w)
      if (coefficients[w] != 0.0) coded[w] = encode_gradient(*scheme, w, grads);
    Vector aggregate = combine_coded_gradients(coefficients, coded);
    scale(inv_n, aggregate);  // sum over samples -> mean gradient
    optimizer.step(params, aggregate);

    if (iter % config.record_every == 0 || iter == config.iterations)
      result.trace.points.push_back(
          {clock, mean_loss(model, data, params), iter});
  }

  result.final_accuracy =
      model.accuracy(data, all_rows(data.size()), params);
  result.final_params = std::move(params);
  return result;
}

BspTrainingResult train_bsp_ignore_stragglers(
    const Cluster& cluster, const Model& model, const Dataset& data,
    std::size_t s, const BspTrainingConfig& config) {
  const std::size_t m = cluster.size();
  HGC_REQUIRE(s < m, "cannot ignore as many workers as exist");
  const auto shards = partition_rows(data.size(), m);

  Rng condition_rng(config.seed + 0x79b9);
  Rng init_rng(config.seed + 0x1111);
  Vector params = model.init_params(init_rng);
  SgdOptimizer optimizer(config.sgd, params.size());

  BspTrainingResult result;
  result.trace.label = "ignore-stragglers";
  double clock = 0.0;
  result.trace.points.push_back({0.0, mean_loss(model, data, params), 0});

  for (std::size_t iter = 1; iter <= config.iterations; ++iter) {
    const IterationConditions conditions =
        config.straggler_model.draw(m, condition_rng);

    // Uncoded even allocation: worker w computes its shard and arrives at
    // share/rate + delay; the master takes the first m−s arrivals.
    std::vector<std::pair<double, WorkerId>> arrivals;
    for (WorkerId w = 0; w < m; ++w) {
      if (conditions.faulted[w]) continue;
      const double rate =
          cluster.worker(w).throughput * conditions.speed_factor[w];
      const double share = static_cast<double>(shards[w].size()) /
                           static_cast<double>(data.size());
      arrivals.emplace_back(
          share / rate + conditions.delay[w] + config.sim.comm_latency, w);
    }
    if (arrivals.size() < m - s) {
      ++result.failed_iterations;  // more faults than the ignore budget
      break;
    }
    std::sort(arrivals.begin(), arrivals.end());
    arrivals.resize(m - s);
    clock += arrivals.back().first;

    // Biased update: gradient over the covered rows only, rescaled to a
    // per-sample mean (the bias: missing shards contribute nothing).
    Vector grad(model.num_params(), 0.0);
    std::size_t covered = 0;
    for (const auto& [at, w] : arrivals) {
      (void)at;
      model.loss_and_gradient(data, shards[w], params, grad);
      covered += shards[w].size();
    }
    scale(1.0 / static_cast<double>(covered), grad);
    optimizer.step(params, grad);

    if (iter % config.record_every == 0 || iter == config.iterations)
      result.trace.points.push_back(
          {clock, mean_loss(model, data, params), iter});
  }

  result.final_accuracy =
      model.accuracy(data, all_rows(data.size()), params);
  result.final_params = std::move(params);
  return result;
}

BspTrainingResult train_serial(const Model& model, const Dataset& data,
                               const BspTrainingConfig& config) {
  Rng init_rng(config.seed + 0x1111);
  Vector params = model.init_params(init_rng);
  SgdOptimizer optimizer(config.sgd, params.size());
  const double inv_n = 1.0 / static_cast<double>(data.size());

  BspTrainingResult result;
  result.trace.label = "serial";
  result.trace.points.push_back({0.0, mean_loss(model, data, params), 0});
  for (std::size_t iter = 1; iter <= config.iterations; ++iter) {
    Vector grad = full_gradient(model, data, params);
    scale(inv_n, grad);
    optimizer.step(params, grad);
    if (iter % config.record_every == 0 || iter == config.iterations)
      result.trace.points.push_back(
          {static_cast<double>(iter), mean_loss(model, data, params), iter});
  }
  result.final_accuracy =
      model.accuracy(data, all_rows(data.size()), params);
  result.final_params = std::move(params);
  return result;
}

}  // namespace hgc
