#include "runtime/networked_trainer.hpp"

#include "net/coded_round.hpp"
#include "sim/iteration.hpp"
#include "util/error.hpp"

namespace hgc {

NetworkedTrainingResult train_bsp_networked(
    SchemeKind kind, const Cluster& cluster, const Model& model,
    const Dataset& data, std::size_t k, std::size_t s,
    const NetworkedTrainingConfig& config) {
  const std::size_t m = cluster.size();
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  HGC_REQUIRE(config.max_round_retries > 0, "need at least one attempt");
  HGC_REQUIRE(config.record_every > 0, "record_every must be positive");

  Rng construction_rng(config.seed);
  Rng condition_rng(config.seed + 0x79b9);
  Rng init_rng(config.seed + 0x1111);

  const auto scheme =
      make_scheme(kind, cluster.throughputs(), k, s, construction_rng);
  const auto partitions =
      partition_rows(data.size(), scheme->num_partitions());

  SimulatedNetwork network(m + 1, config.link, Rng(config.seed + 0x2222));

  Vector params = model.init_params(init_rng);
  SgdOptimizer optimizer(config.sgd, params.size());
  const double inv_n = 1.0 / static_cast<double>(data.size());

  NetworkedTrainingResult result;
  result.trace.label = scheme->name() + "+net";
  double clock = 0.0;
  result.trace.points.push_back({0.0, mean_loss(model, data, params), 0});

  for (std::size_t iter = 1; iter <= config.iterations; ++iter) {
    const auto grads =
        all_partition_gradients(model, data, partitions, params);

    bool stepped = false;
    for (std::size_t attempt = 0; attempt < config.max_round_retries;
         ++attempt) {
      const IterationConditions conditions =
          config.straggler_model.draw(m, condition_rng);
      const NetworkRoundResult round = run_coded_round(
          *scheme, cluster, conditions, grads, network, iter);
      result.messages_dropped += round.dropped;
      if (!round.decoded) {
        ++result.rounds_retried;
        // The retry replays the full round: workers recompute and resend,
        // costing roughly one more iteration of wall time.
        clock += ideal_iteration_time(cluster, s);
        continue;
      }
      clock += round.time;
      Vector aggregate = round.aggregate;
      scale(inv_n, aggregate);
      optimizer.step(params, aggregate);
      stepped = true;
      break;
    }
    if (!stepped) {
      ++result.rounds_abandoned;  // parameters unchanged this iteration
      continue;
    }
    if (iter % config.record_every == 0 || iter == config.iterations)
      result.trace.points.push_back(
          {clock, mean_loss(model, data, params), iter});
  }

  result.bytes_sent = network.bytes_sent();
  result.final_accuracy =
      model.accuracy(data, all_rows(data.size()), params);
  result.final_params = std::move(params);
  return result;
}

}  // namespace hgc
