// Loss-vs-time traces (the series plotted in Fig. 4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hgc {

/// One sample of the training curve.
struct TracePoint {
  double time = 0.0;   ///< seconds (virtual or wall, per trainer)
  double loss = 0.0;   ///< mean loss over the full dataset
  std::size_t iteration = 0;
};

/// A labeled training curve.
struct LossTrace {
  std::string label;
  std::vector<TracePoint> points;

  double final_loss() const {
    return points.empty() ? 0.0 : points.back().loss;
  }
  double total_time() const {
    return points.empty() ? 0.0 : points.back().time;
  }

  /// Earliest time at which the loss dropped to `target`, or +inf.
  double time_to_loss(double target) const;
};

}  // namespace hgc
