// Discrete-event simulation core: a virtual clock driving an event queue.
//
// Every trainer and scenario driver in the repository advances time through
// one of these rather than a bespoke loop: handlers run at their scheduled
// virtual time, may schedule further events (including zero-delay ones), and
// may stop the run early (e.g. the master decoding before all results
// arrive). Time never flows backwards, so within one Simulation all observed
// `now()` values are monotone.
#pragma once

#include <functional>

#include "engine/event_queue.hpp"

namespace hgc::engine {

/// Virtual-clock event loop.
class Simulation {
 public:
  /// Current virtual time (seconds). 0 before any event has run.
  double now() const { return now_; }

  /// Schedule `action` at absolute virtual time `time` (>= now()). `tag`
  /// breaks ties among equal times (lower first; equal tags fire FIFO) —
  /// pass a worker id to pin simultaneous events to worker order.
  EventId schedule_at(double time, std::function<void()> action,
                      std::uint64_t tag = 0);

  /// Schedule `action` `delay` seconds from now (delay >= 0).
  EventId schedule_after(double delay, std::function<void()> action,
                         std::uint64_t tag = 0);

  /// Cancel a pending event (timers). False when it already ran.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run the next event. Returns false when the queue is empty or the
  /// simulation was stopped.
  bool step();

  /// Run until the queue drains or stop() is called; returns the number of
  /// events executed by this call.
  std::size_t run();

  /// Run events with time <= `until`, then advance the clock to `until`
  /// (unless stopped earlier). Returns the number of events executed.
  std::size_t run_until(double until);

  /// Halt the loop; pending events stay queued. resume() re-arms it.
  void stop() { stopped_ = true; }
  void resume() { stopped_ = false; }
  bool stopped() const { return stopped_; }

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::size_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  bool stopped_ = false;
  std::size_t executed_ = 0;
};

}  // namespace hgc::engine
