// One coded aggregation round as a cast of engine actors.
//
// This is the event-driven replacement for the bespoke sort-and-scan loops
// that used to live in sim/iteration.cpp and net/coded_round.cpp: every
// WorkerActor computes, waits out its injected delay, and ships its coded
// result through a Link; the MasterActor feeds arrivals to a StreamingDecoder
// and stops the clock at the first decodable prefix. Equal arrival times
// resolve in worker-id order (arrival events are tagged with the worker id),
// matching the previous implementations' (time, worker) sort.
//
// Two payload modes share the same event flow:
//   * timing-only (partition_gradients == nullptr): empty payloads; callers
//     want the decode time, coefficients and resource usage (sim/).
//   * real payloads, optionally wire-framed through net/wire with checksums
//     and an iteration tag (net/, the networked trainer).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/coding_scheme.hpp"
#include "core/decoder.hpp"
#include "engine/actor.hpp"
#include "engine/link.hpp"

namespace hgc::engine {

/// Optional knobs of run_round.
struct RoundOptions {
  /// When set, workers encode these partition gradients (g_j) and the master
  /// reconstructs the aggregate; when null the round is timing-only.
  const std::vector<Vector>* partition_gradients = nullptr;
  /// Serialize payloads into checksummed wire frames (requires gradients).
  bool wire_frames = false;
  /// Iteration tag stamped into wire frames.
  std::uint64_t iteration = 0;
  /// Optional LRU of solved decoding coefficients (the paper's Section III-B
  /// storage optimization). Must wrap the round's scheme. Callers running
  /// many rounds against one scheme share it across rounds so repeated
  /// straggler patterns skip the O(s³) solve; not thread-safe, so parallel
  /// callers keep one per thread.
  DecodingCache* decoding_cache = nullptr;
  /// How the master's StreamingDecoder tests prefixes. kCanonical is the
  /// byte-identity reference; kIncremental maintains an append-only QR
  /// across arrivals (O(k·n) per arrival) and is incompatible with
  /// `decoding_cache`. See core/decoder.hpp.
  DecodeStrategy decode_strategy = DecodeStrategy::kCanonical;
  /// Observability routing — never affects results. When non-zero (and the
  /// tracer is on), the round lays its master/worker timeline out on this
  /// virtual-clock track of the Chrome trace (sweep cells claim
  /// cell.index + 1); 0 = no virtual events.
  std::uint32_t trace_track = 0;
  /// Virtual time (seconds) this round starts at on its track — the
  /// caller's accumulated clock across iterations.
  double trace_time_base = 0.0;
};

/// Outcome of one engine round.
struct RoundOutcome {
  bool decoded = false;
  /// Virtual decode time; +inf when the round never becomes decodable.
  double time = std::numeric_limits<double>::infinity();
  std::size_t results_used = 0;
  std::size_t dropped = 0;  ///< messages the link lost in flight
  std::optional<Vector> coefficients;
  Vector aggregate;  ///< decoded Σ g_j; empty in timing-only rounds
  /// Per-worker pure compute durations (+inf for faulted/idle workers).
  std::vector<double> compute_times;
  /// Fig. 5 metric Σ busy_i / (m · T); 0 when the round failed.
  double resource_usage = 0.0;
  std::size_t events_executed = 0;
};

/// Master side of a round: collects arrivals, decodes at the earliest
/// sufficient set, then stops the simulation.
class MasterActor : public Actor {
 public:
  MasterActor(Simulation& sim, const CodingScheme& scheme,
              DecodingCache* decoding_cache = nullptr,
              DecodeStrategy strategy = DecodeStrategy::kCanonical);

  /// Arm for (another) round; resets the decoder. `iteration` is the tag
  /// expected on incoming wire frames.
  void begin_round(std::uint64_t iteration = 0);

  /// Deliver worker w's coded result at the current virtual time. The
  /// payload may be empty in timing-only rounds.
  void receive_result(WorkerId w, Vector coded);

  /// Deliver a serialized frame: parse, check the iteration tag, decode.
  void receive_frame(const std::vector<std::byte>& frame);

  bool decoded() const { return decoder_.ready(); }
  double decode_time() const { return decode_time_; }
  std::size_t results_used() const { return results_used_; }
  const Vector& coefficients() const { return decoder_.coefficients(); }
  Vector aggregate() const { return decoder_.aggregate(); }

 private:
  StreamingDecoder decoder_;
  std::uint64_t iteration_ = 0;
  double decode_time_ = std::numeric_limits<double>::infinity();
  std::size_t results_used_ = 0;
};

/// Worker side of a round: compute the partition share, wait out the injected
/// delay, encode, and transmit to the master through the link.
class WorkerActor : public Actor {
 public:
  WorkerActor(Simulation& sim, WorkerId id, const WorkerSpec& spec);

  WorkerId id() const { return id_; }

  /// Launch this worker's part of one round starting at the current virtual
  /// time. Faulted and zero-load workers do nothing. Returns the pure
  /// compute duration (+inf when the worker sits the round out); lost
  /// transmissions bump `dropped`.
  double begin_round(const CodingScheme& scheme,
                     const IterationConditions& conditions, Link& link,
                     NodeId master_node, MasterActor& master,
                     const RoundOptions& options, std::size_t& dropped);

 private:
  WorkerId id_;
  WorkerSpec spec_;
};

/// Run one full round on a fresh event loop. Workers are nodes 0..m-1, the
/// master is node m (the Link's address space must cover it).
RoundOutcome run_round(const CodingScheme& scheme, const Cluster& cluster,
                       const IterationConditions& conditions, Link& link,
                       const RoundOptions& options = {});

}  // namespace hgc::engine
