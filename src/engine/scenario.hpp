// Scenario drivers on top of the discrete-event engine.
//
// The analytic harness in sim/experiment.hpp replays iid conditions on a
// fixed cluster; real clusters misbehave in richer ways. Two drivers cover
// the gap:
//
//   * Worker churn — workers leave and join mid-training. The master reacts
//     the only way gradient coding allows: it re-instantiates the coding
//     scheme over the surviving membership (a scheme's B matrix is bound to
//     a fixed worker set), repartitions, and carries on. The driver reports
//     how often that happened and what it did to round latency.
//
//   * Trace replay — per-worker delays come from a recorded DelayTrace
//     instead of a stochastic model, so a real cluster's straggler log can
//     be replayed under any coding scheme. Replay conditions are
//     deterministic, which makes scheme comparisons exactly fair by
//     construction (the same trace row drives every scheme's round).
//
// Both drivers run timing-level rounds (engine::run_round over a
// FixedLatencyLink), the same granularity as the paper-figure experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_factory.hpp"
#include "engine/delay_trace.hpp"
#include "sim/iteration.hpp"
#include "util/stats.hpp"

namespace hgc::engine {

/// One membership change. Workers carry stable roster ids: the initial
/// cluster's workers are 0..m0-1 and every join allocates the next id, so a
/// later leave can name exactly which worker departed.
struct ChurnEvent {
  double time = 0.0;       ///< virtual time at which the change takes effect
  bool join = false;       ///< false = leave
  std::size_t worker = 0;  ///< leave only: stable id of the departing worker
  WorkerSpec spec;         ///< join only: the new worker's hardware
};

/// Configuration of a churn run.
struct ChurnConfig {
  std::size_t iterations = 100;
  std::size_t s = 1;   ///< straggler tolerance, re-used for every epoch
  std::size_t k = 0;   ///< partitions; 0 = 2 × active workers, per epoch
  StragglerModel model;
  SimParams sim;
  std::uint64_t seed = 42;
  std::vector<ChurnEvent> events;  ///< must be sorted by time, ascending
  /// Decoding-coefficient LRU capacity; 0 = solve every round. The cache is
  /// bound to the scheme, so churn rebuilds it with every re-instantiation.
  std::size_t decoding_cache_capacity = 0;
};

/// Outcome of a churn run.
struct ChurnResult {
  std::string scheme;
  std::size_t iterations_run = 0;
  std::size_t failures = 0;          ///< undecodable rounds (clock unchanged)
  std::size_t reinstantiations = 0;  ///< scheme rebuilds after churn
  double total_time = 0.0;
  RunningStats iteration_time;
  ReservoirQuantiles latency{1024};  ///< p50/p95/p99 round latency
  /// Active worker count per membership epoch, initial epoch first.
  std::vector<std::size_t> epoch_sizes;
  /// Decoding-cache traffic summed over epochs (0/0 when disabled).
  std::size_t decode_hits = 0;
  std::size_t decode_misses = 0;
};

/// Run `kind` on `initial` while applying the configured membership events.
/// Every epoch needs at least s + 2 active workers (a scheme must keep at
/// least one non-straggler plus room to drop s).
ChurnResult run_churn_scenario(SchemeKind kind, const Cluster& initial,
                               const ChurnConfig& config);

/// Configuration of a trace replay.
struct TraceReplayConfig {
  std::size_t iterations = 0;  ///< 0 = one pass over the trace
  std::size_t s = 1;
  std::size_t k = 0;           ///< 0 = 2m
  SimParams sim;
  std::uint64_t seed = 42;     ///< scheme-construction randomness only
  /// Decoding-coefficient LRU capacity; 0 = solve every round.
  std::size_t decoding_cache_capacity = 0;
};

/// Outcome of replaying one scheme against a trace.
struct TraceReplayResult {
  std::string scheme;
  std::size_t iterations = 0;
  std::size_t failures = 0;
  double total_time = 0.0;
  RunningStats iteration_time;
  ReservoirQuantiles latency{1024};
  /// Decoding-cache traffic (0/0 when disabled).
  std::size_t decode_hits = 0;
  std::size_t decode_misses = 0;
};

/// Replay `trace` (one row per iteration, wrapping) under `kind` on
/// `cluster`. The trace must have exactly one column per cluster worker.
TraceReplayResult replay_trace(SchemeKind kind, const Cluster& cluster,
                               const DelayTrace& trace,
                               const TraceReplayConfig& config);

/// Replay several schemes against the same trace. Fairness is structural:
/// every scheme's iteration i runs under the identical trace row.
std::vector<TraceReplayResult> replay_trace_comparison(
    const std::vector<SchemeKind>& kinds, const Cluster& cluster,
    const DelayTrace& trace, const TraceReplayConfig& config);

}  // namespace hgc::engine
