// Scenario drivers on top of the discrete-event engine.
//
// The analytic harness in sim/experiment.hpp replays iid conditions on a
// fixed cluster; real clusters misbehave in richer ways. Three drivers cover
// the gap:
//
//   * Worker churn — workers leave and join mid-training. The master reacts
//     the only way gradient coding allows: it re-instantiates the coding
//     scheme over the surviving membership (a scheme's B matrix is bound to
//     a fixed worker set), repartitions, and carries on. The driver reports
//     how often that happened and what it did to round latency.
//
//   * Trace replay — per-worker delays come from a recorded DelayTrace
//     instead of a stochastic model, so a real cluster's straggler log can
//     be replayed under any coding scheme. Replay conditions are
//     deterministic, which makes scheme comparisons exactly fair by
//     construction (the same trace row drives every scheme's round).
//
//   * Scenario scripts — a ScenarioScript composes churn, per-worker speed
//     drift, correlated straggler bursts, and a spliced delay trace into one
//     run. Scripts are what the operator-authored text DSL (scenario/dsl.hpp)
//     compiles to, so new failure narratives are data, not C++.
//
// All drivers run timing-level rounds (engine::run_round over a
// FixedLatencyLink), the same granularity as the paper-figure experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/scheme_factory.hpp"
#include "engine/delay_trace.hpp"
#include "sim/iteration.hpp"
#include "util/stats.hpp"

namespace hgc::engine {

/// One membership change. Workers carry stable roster ids: the initial
/// cluster's workers are 0..m0-1 and every join allocates the next id, so a
/// later leave can name exactly which worker departed.
struct ChurnEvent {
  double time = 0.0;       ///< virtual time at which the change takes effect
  bool join = false;       ///< false = leave
  std::size_t worker = 0;  ///< leave only: stable id of the departing worker
  WorkerSpec spec;         ///< join only: the new worker's hardware
};

/// Configuration of a churn run.
struct ChurnConfig {
  std::size_t iterations = 100;
  std::size_t s = 1;   ///< straggler tolerance, re-used for every epoch
  std::size_t k = 0;   ///< partitions; 0 = 2 × active workers, per epoch
  StragglerModel model;
  SimParams sim;
  std::uint64_t seed = 42;
  std::vector<ChurnEvent> events;  ///< must be sorted by time, ascending
  /// Decoding-coefficient LRU capacity; 0 = solve every round. The cache is
  /// bound to the scheme, so churn rebuilds it with every re-instantiation.
  std::size_t decoding_cache_capacity = 0;
};

/// Outcome of a churn run.
struct ChurnResult {
  std::string scheme;
  std::size_t iterations_run = 0;
  std::size_t failures = 0;          ///< undecodable rounds (clock unchanged)
  std::size_t reinstantiations = 0;  ///< scheme rebuilds after churn
  double total_time = 0.0;
  RunningStats iteration_time;
  ReservoirQuantiles latency{1024};  ///< p50/p95/p99 round latency
  /// Active worker count per membership epoch, initial epoch first.
  std::vector<std::size_t> epoch_sizes;
  /// Decoding-cache traffic summed over epochs (0/0 when disabled).
  std::size_t decode_hits = 0;
  std::size_t decode_misses = 0;
};

/// Run `kind` on `initial` while applying the configured membership events.
/// Every epoch needs at least s + 2 active workers (a scheme must keep at
/// least one non-straggler plus room to drop s).
ChurnResult run_churn_scenario(SchemeKind kind, const Cluster& initial,
                               const ChurnConfig& config);

/// Configuration of a trace replay.
struct TraceReplayConfig {
  std::size_t iterations = 0;  ///< 0 = one pass over the trace
  std::size_t s = 1;
  std::size_t k = 0;           ///< 0 = 2m
  SimParams sim;
  std::uint64_t seed = 42;     ///< scheme-construction randomness only
  /// Decoding-coefficient LRU capacity; 0 = solve every round.
  std::size_t decoding_cache_capacity = 0;
};

/// Outcome of replaying one scheme against a trace.
struct TraceReplayResult {
  std::string scheme;
  std::size_t iterations = 0;
  std::size_t failures = 0;
  double total_time = 0.0;
  RunningStats iteration_time;
  ReservoirQuantiles latency{1024};
  /// Decoding-cache traffic (0/0 when disabled).
  std::size_t decode_hits = 0;
  std::size_t decode_misses = 0;
};

/// Replay `trace` (one row per iteration, wrapping) under `kind` on
/// `cluster`. The trace must have exactly one column per cluster worker.
TraceReplayResult replay_trace(SchemeKind kind, const Cluster& cluster,
                               const DelayTrace& trace,
                               const TraceReplayConfig& config);

/// Replay several schemes against the same trace. Fairness is structural:
/// every scheme's iteration i runs under the identical trace row.
std::vector<TraceReplayResult> replay_trace_comparison(
    const std::vector<SchemeKind>& kinds, const Cluster& cluster,
    const DelayTrace& trace, const TraceReplayConfig& config);

// --- Scenario scripts ----------------------------------------------------

/// A linear per-worker speed ramp (the DSL's `drift W speed a -> b over
/// [t0,t1]`). The named worker's speed factor is multiplied by `from`
/// before t0, by the linear interpolation inside [t0,t1], and by `to` from
/// t1 on — a machine heating up, a noisy neighbour moving in, a VM being
/// live-migrated to slower hardware.
struct DriftWindow {
  std::size_t worker = 0;  ///< stable roster id
  double from = 1.0;       ///< multiplier before the window
  double to = 1.0;         ///< multiplier after the window
  double t0 = 0.0;
  double t1 = 0.0;

  double factor_at(double time) const;
};

/// One correlated-straggler process (the DSL's `correlated stragglers {..}
/// p=.. dur=..`). Whenever no burst of this process is active, each
/// iteration starts one with probability `probability`; an active burst
/// delays (or fail-stops) every listed worker until `duration` virtual
/// seconds have passed — the whole rack stalls together, which iid
/// straggler models cannot express.
struct CorrelatedStragglers {
  std::vector<std::size_t> workers;  ///< stable roster ids, hit together
  double probability = 0.0;          ///< per-iteration burst start chance
  double duration = 0.0;             ///< burst length in virtual seconds
  double delay = 0.0;                ///< seconds added while active
  bool fault = false;                ///< fail-stop instead of delaying
};

/// A compiled operator-authored scenario: everything the text DSL
/// (scenario/dsl.hpp) can express, in one runnable value. Conditions
/// compose per iteration: the run's StragglerModel draws the base, then the
/// splice row adds its delays (negative = fault), drift windows scale speed
/// factors, and active bursts add theirs on top.
struct ScenarioScript {
  /// Declared initial cluster size; the driver rejects a mismatched
  /// cluster. 0 = accept any (hand-built scripts only; the DSL always
  /// declares it).
  std::size_t workers = 0;
  std::vector<ChurnEvent> churn;  ///< must be sorted by time, ascending
  std::vector<DriftWindow> drifts;
  std::vector<CorrelatedStragglers> bursts;
  /// Optional base delays (column = stable worker id; workers joined after
  /// the start take no spliced delay). Empty = none.
  DelayTrace splice;
  /// Passes over the splice rows before they stop contributing; 0 = wrap
  /// forever.
  std::size_t splice_repeat = 1;
};

/// Configuration of a script run.
struct ScriptConfig {
  std::size_t iterations = 100;
  std::size_t s = 1;   ///< straggler tolerance, re-used for every epoch
  std::size_t k = 0;   ///< partitions; 0 = 2 × active workers, per epoch
  /// Base conditions the script composes onto (fluctuation, iid
  /// stragglers); default = clean rounds.
  StragglerModel model;
  SimParams sim;
  std::uint64_t seed = 42;
  /// Decoding-coefficient LRU capacity; 0 = solve every round.
  std::size_t decoding_cache_capacity = 0;
};

/// Outcome of a script run.
struct ScriptResult {
  std::string scheme;
  std::size_t iterations_run = 0;
  std::size_t failures = 0;          ///< undecodable rounds
  std::size_t reinstantiations = 0;  ///< scheme rebuilds after churn
  std::size_t bursts_started = 0;    ///< correlated bursts that fired
  double total_time = 0.0;
  RunningStats iteration_time;
  ReservoirQuantiles latency{1024};  ///< p50/p95/p99 round latency
  /// Active worker count per membership epoch, initial epoch first.
  std::vector<std::size_t> epoch_sizes;
  /// Decoding-cache traffic summed over epochs (0/0 when disabled).
  std::size_t decode_hits = 0;
  std::size_t decode_misses = 0;
};

/// Run `kind` on `initial` under `script`. Time-keyed effects (drift
/// windows, burst expiry, churn) follow the virtual clock; an undecodable
/// round advances it by the epoch's ideal iteration time (the master's
/// give-up timeout) so a faulting burst cannot freeze the clock and pin the
/// run inside its own window. All randomness (base model, burst starts)
/// derives from config.seed, so runs are deterministic.
ScriptResult run_script_scenario(SchemeKind kind, const Cluster& initial,
                                 const ScenarioScript& script,
                                 const ScriptConfig& config);

}  // namespace hgc::engine
