#include "engine/scenario.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "engine/link.hpp"
#include "engine/round.hpp"
#include "util/error.hpp"

namespace hgc::engine {
namespace {

/// Roster entry: stable id + hardware.
struct RosterEntry {
  std::size_t id;
  WorkerSpec spec;
};

Cluster cluster_of(const std::vector<RosterEntry>& roster, std::size_t epoch) {
  std::vector<WorkerSpec> specs;
  specs.reserve(roster.size());
  for (const RosterEntry& entry : roster) specs.push_back(entry.spec);
  return Cluster("churn-epoch-" + std::to_string(epoch), std::move(specs));
}

Throughputs throughputs_of(const std::vector<RosterEntry>& roster) {
  Throughputs c;
  c.reserve(roster.size());
  for (const RosterEntry& entry : roster) c.push_back(entry.spec.throughput);
  return c;
}

}  // namespace

ChurnResult run_churn_scenario(SchemeKind kind, const Cluster& initial,
                               const ChurnConfig& config) {
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  HGC_REQUIRE(std::is_sorted(config.events.begin(), config.events.end(),
                             [](const ChurnEvent& a, const ChurnEvent& b) {
                               return a.time < b.time;
                             }),
              "churn events must be sorted by time");

  std::vector<RosterEntry> roster;
  roster.reserve(initial.size());
  for (std::size_t id = 0; id < initial.size(); ++id)
    roster.push_back({id, initial.worker(id)});
  std::size_t next_stable_id = initial.size();

  Rng construction_rng(config.seed);
  Rng condition_rng(config.seed + 0x79b9);

  ChurnResult result;
  std::size_t epoch = 0;
  auto rebuild = [&] {
    HGC_REQUIRE(roster.size() >= config.s + 2,
                "churn left too few workers for tolerance s");
    const std::size_t k =
        config.k == 0 ? 2 * roster.size() : config.k;
    auto scheme = make_scheme(kind, throughputs_of(roster), k, config.s,
                              construction_rng);
    result.epoch_sizes.push_back(roster.size());
    return scheme;
  };

  Cluster active = cluster_of(roster, epoch);
  auto scheme = rebuild();
  result.scheme = scheme->name();

  // The decoding cache keys on the scheme's receive patterns, so every
  // re-instantiation invalidates it wholesale; rebuilding is the only
  // correct response to a membership change.
  std::optional<DecodingCache> decoding_cache;
  const auto harvest_cache = [&] {
    if (!decoding_cache) return;
    result.decode_hits += decoding_cache->hits();
    result.decode_misses += decoding_cache->misses();
  };
  const auto rebuild_cache = [&] {
    harvest_cache();
    if (config.decoding_cache_capacity > 0)
      decoding_cache.emplace(*scheme, config.decoding_cache_capacity);
  };
  rebuild_cache();

  double clock = 0.0;
  std::size_t next_event = 0;
  FixedLatencyLink link(config.sim.comm_latency);
  RoundOptions round_options;

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // Apply every membership change that has come due, then re-instantiate
    // the scheme once — the master cannot decode a B matrix built for a
    // worker set that no longer exists.
    bool membership_changed = false;
    while (next_event < config.events.size() &&
           config.events[next_event].time <= clock) {
      const ChurnEvent& event = config.events[next_event++];
      if (event.join) {
        roster.push_back({next_stable_id++, event.spec});
      } else {
        const auto it = std::find_if(
            roster.begin(), roster.end(),
            [&](const RosterEntry& e) { return e.id == event.worker; });
        HGC_REQUIRE(it != roster.end(),
                    "churn leave names a worker not in the roster");
        roster.erase(it);
      }
      membership_changed = true;
    }
    if (membership_changed) {
      ++epoch;
      active = cluster_of(roster, epoch);
      scheme = rebuild();
      rebuild_cache();
      ++result.reinstantiations;
    }

    const IterationConditions conditions =
        config.model.draw(active.size(), condition_rng);
    round_options.decoding_cache =
        decoding_cache ? &*decoding_cache : nullptr;
    const RoundOutcome round =
        run_round(*scheme, active, conditions, link, round_options);
    ++result.iterations_run;
    if (!round.decoded) {
      ++result.failures;
      continue;
    }
    clock += round.time;
    result.iteration_time.add(round.time);
    result.latency.add(round.time);
  }

  harvest_cache();
  result.total_time = clock;
  return result;
}

TraceReplayResult replay_trace(SchemeKind kind, const Cluster& cluster,
                               const DelayTrace& trace,
                               const TraceReplayConfig& config) {
  HGC_REQUIRE(trace.num_workers() == cluster.size(),
              "trace must have one delay column per cluster worker");
  const std::size_t iterations =
      config.iterations == 0 ? trace.num_iterations() : config.iterations;
  HGC_REQUIRE(iterations > 0, "need at least one iteration");

  Rng construction_rng(config.seed);
  const std::size_t k =
      config.k == 0 ? 2 * cluster.size() : config.k;
  const auto scheme = make_scheme(kind, cluster.throughputs(), k, config.s,
                                  construction_rng);

  TraceReplayResult result;
  result.scheme = scheme->name();
  result.iterations = iterations;
  FixedLatencyLink link(config.sim.comm_latency);

  std::optional<DecodingCache> decoding_cache;
  if (config.decoding_cache_capacity > 0)
    decoding_cache.emplace(*scheme, config.decoding_cache_capacity);
  RoundOptions round_options;
  round_options.decoding_cache = decoding_cache ? &*decoding_cache : nullptr;

  double clock = 0.0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const IterationConditions conditions = trace.conditions(iter);
    const RoundOutcome round =
        run_round(*scheme, cluster, conditions, link, round_options);
    if (!round.decoded) {
      ++result.failures;
      continue;
    }
    clock += round.time;
    result.iteration_time.add(round.time);
    result.latency.add(round.time);
  }
  if (decoding_cache) {
    result.decode_hits = decoding_cache->hits();
    result.decode_misses = decoding_cache->misses();
  }
  result.total_time = clock;
  return result;
}

std::vector<TraceReplayResult> replay_trace_comparison(
    const std::vector<SchemeKind>& kinds, const Cluster& cluster,
    const DelayTrace& trace, const TraceReplayConfig& config) {
  std::vector<TraceReplayResult> results;
  results.reserve(kinds.size());
  for (SchemeKind kind : kinds)
    results.push_back(replay_trace(kind, cluster, trace, config));
  return results;
}

}  // namespace hgc::engine
