#include "engine/scenario.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "engine/link.hpp"
#include "engine/round.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace hgc::engine {
namespace {

/// Roster entry: stable id + hardware.
struct RosterEntry {
  std::size_t id;
  WorkerSpec spec;
};

Cluster cluster_of(const std::vector<RosterEntry>& roster, std::size_t epoch) {
  std::vector<WorkerSpec> specs;
  specs.reserve(roster.size());
  for (const RosterEntry& entry : roster) specs.push_back(entry.spec);
  return Cluster("churn-epoch-" + std::to_string(epoch), std::move(specs));
}

Throughputs throughputs_of(const std::vector<RosterEntry>& roster) {
  Throughputs c;
  c.reserve(roster.size());
  for (const RosterEntry& entry : roster) c.push_back(entry.spec.throughput);
  return c;
}

}  // namespace

double DriftWindow::factor_at(double time) const {
  if (time <= t0) return from;
  if (time >= t1) return to;
  const double alpha = (time - t0) / (t1 - t0);
  return from + alpha * (to - from);
}

ChurnResult run_churn_scenario(SchemeKind kind, const Cluster& initial,
                               const ChurnConfig& config) {
  // Churn is the script driver with every other script axis empty. The
  // RNG streams are unchanged (the driver only draws for script features a
  // run declares), but failure semantics are deliberately unified with
  // scripts: an undecodable round now advances the clock by the give-up
  // timeout, where the old churn loop froze it — so churn runs whose model
  // overwhelms s report slightly larger total_time and may fire pending
  // events one iteration earlier than before the unification.
  ScenarioScript script;
  script.workers = initial.size();
  script.churn = config.events;
  ScriptConfig script_config;
  script_config.iterations = config.iterations;
  script_config.s = config.s;
  script_config.k = config.k;
  script_config.model = config.model;
  script_config.sim = config.sim;
  script_config.seed = config.seed;
  script_config.decoding_cache_capacity = config.decoding_cache_capacity;

  ScriptResult run = run_script_scenario(kind, initial, script, script_config);
  ChurnResult result;
  result.scheme = std::move(run.scheme);
  result.iterations_run = run.iterations_run;
  result.failures = run.failures;
  result.reinstantiations = run.reinstantiations;
  result.total_time = run.total_time;
  result.iteration_time = run.iteration_time;
  result.latency = run.latency;
  result.epoch_sizes = std::move(run.epoch_sizes);
  result.decode_hits = run.decode_hits;
  result.decode_misses = run.decode_misses;
  return result;
}

ScriptResult run_script_scenario(SchemeKind kind, const Cluster& initial,
                                 const ScenarioScript& script,
                                 const ScriptConfig& config) {
  HGC_REQUIRE(config.iterations > 0, "need at least one iteration");
  HGC_REQUIRE(script.workers == 0 || script.workers == initial.size(),
              "scenario script declares " + std::to_string(script.workers) +
                  " workers but the cluster has " +
                  std::to_string(initial.size()));
  HGC_REQUIRE(std::is_sorted(script.churn.begin(), script.churn.end(),
                             [](const ChurnEvent& a, const ChurnEvent& b) {
                               return a.time < b.time;
                             }),
              "churn events must be sorted by time");
  const std::size_t splice_rows = script.splice.num_iterations();
  HGC_REQUIRE(splice_rows == 0 ||
                  script.splice.num_workers() == initial.size(),
              "spliced trace must have one column per initial worker");

  std::vector<RosterEntry> roster;
  roster.reserve(initial.size());
  for (std::size_t id = 0; id < initial.size(); ++id)
    roster.push_back({id, initial.worker(id)});
  std::size_t next_stable_id = initial.size();

  Rng construction_rng(config.seed);
  Rng condition_rng(config.seed + 0x79b9);

  ScriptResult result;
  std::size_t epoch = 0;
  auto rebuild = [&] {
    HGC_REQUIRE(roster.size() >= config.s + 2,
                "churn left too few workers for tolerance s");
    const std::size_t k =
        config.k == 0 ? 2 * roster.size() : config.k;
    auto scheme = make_scheme(kind, throughputs_of(roster), k, config.s,
                              construction_rng);
    result.epoch_sizes.push_back(roster.size());
    return scheme;
  };

  Cluster active = cluster_of(roster, epoch);
  auto scheme = rebuild();
  result.scheme = scheme->name();

  // The decoding cache keys on the scheme's receive patterns, so every
  // re-instantiation invalidates it wholesale; rebuilding is the only
  // correct response to a membership change.
  std::optional<DecodingCache> decoding_cache;
  const auto harvest_cache = [&] {
    if (!decoding_cache) return;
    result.decode_hits += decoding_cache->hits();
    result.decode_misses += decoding_cache->misses();
  };
  const auto rebuild_cache = [&] {
    harvest_cache();
    if (config.decoding_cache_capacity > 0)
      decoding_cache.emplace(*scheme, config.decoding_cache_capacity);
  };
  rebuild_cache();

  // Position of a stable worker id in the active roster, or npos once it
  // has left — scripted effects name roster ids, conditions are positional.
  const auto position_of = [&](std::size_t id) -> std::size_t {
    for (std::size_t p = 0; p < roster.size(); ++p)
      if (roster[p].id == id) return p;
    return static_cast<std::size_t>(-1);
  };

  double clock = 0.0;
  std::size_t next_event = 0;
  std::vector<double> burst_until(script.bursts.size(),
                                  -std::numeric_limits<double>::infinity());
  FixedLatencyLink link(config.sim.comm_latency);
  RoundOptions round_options;

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // Apply every membership change that has come due, then re-instantiate
    // the scheme once — the master cannot decode a B matrix built for a
    // worker set that no longer exists.
    bool membership_changed = false;
    while (next_event < script.churn.size() &&
           script.churn[next_event].time <= clock) {
      const ChurnEvent& event = script.churn[next_event++];
      if (event.join) {
        roster.push_back({next_stable_id++, event.spec});
      } else {
        const auto it = std::find_if(
            roster.begin(), roster.end(),
            [&](const RosterEntry& e) { return e.id == event.worker; });
        HGC_REQUIRE(it != roster.end(),
                    "churn leave names a worker not in the roster");
        roster.erase(it);
      }
      membership_changed = true;
    }
    if (membership_changed) {
      ++epoch;
      active = cluster_of(roster, epoch);
      scheme = rebuild();
      rebuild_cache();
      ++result.reinstantiations;
      if (obs::metrics_enabled()) {
        static const obs::Counter reinstantiations =
            obs::Registry::global().counter("engine.reinstantiations");
        reinstantiations.add();
      }
      obs::trace_virtual_instant(config.sim.trace_track, 0, "reinstantiate",
                                 "scenario", clock,
                                 static_cast<std::int64_t>(roster.size()));
    }

    IterationConditions conditions =
        config.model.draw(active.size(), condition_rng);

    // Splice row: base per-worker delays recorded against the initial
    // roster (column = stable id; joined workers take none).
    if (splice_rows > 0 &&
        (script.splice_repeat == 0 ||
         iter < splice_rows * script.splice_repeat)) {
      const auto& row = script.splice.rows()[iter % splice_rows];
      for (std::size_t p = 0; p < roster.size(); ++p) {
        if (roster[p].id >= row.size()) continue;
        const double v = row[roster[p].id];
        if (v < 0.0)
          conditions.faulted[p] = true;
        else
          conditions.delay[p] += v;
      }
    }

    // Drift windows: scale speed factors by the ramp value at the current
    // virtual time.
    for (const DriftWindow& drift : script.drifts) {
      const std::size_t p = position_of(drift.worker);
      if (p != static_cast<std::size_t>(-1))
        conditions.speed_factor[p] *= drift.factor_at(clock);
    }

    // Correlated bursts: each idle process makes one Bernoulli draw per
    // iteration; active ones draw nothing until their window expires.
    for (std::size_t b = 0; b < script.bursts.size(); ++b) {
      const CorrelatedStragglers& burst = script.bursts[b];
      if (clock >= burst_until[b] &&
          condition_rng.bernoulli(burst.probability)) {
        burst_until[b] = clock + burst.duration;
        ++result.bursts_started;
        if (obs::metrics_enabled()) {
          static const obs::Counter bursts =
              obs::Registry::global().counter("engine.bursts");
          bursts.add();
        }
        obs::trace_virtual_instant(config.sim.trace_track, 0, "burst",
                                   "scenario", clock,
                                   static_cast<std::int64_t>(b));
      }
      if (clock >= burst_until[b]) continue;
      for (std::size_t id : burst.workers) {
        const std::size_t p = position_of(id);
        if (p == static_cast<std::size_t>(-1)) continue;
        if (burst.fault)
          conditions.faulted[p] = true;
        else
          conditions.delay[p] += burst.delay;
      }
    }

    round_options.decoding_cache =
        decoding_cache ? &*decoding_cache : nullptr;
    round_options.trace_track = config.sim.trace_track;
    round_options.trace_time_base = clock;
    const RoundOutcome round =
        run_round(*scheme, active, conditions, link, round_options);
    ++result.iterations_run;
    if (!round.decoded) {
      ++result.failures;
      // The master gives up after the epoch's ideal round time; without the
      // timeout a fault burst would freeze the clock inside its own window
      // and fail every remaining iteration.
      const double timeout = ideal_iteration_time(active, config.s);
      if (obs::metrics_enabled()) {
        static const obs::Counter giveups =
            obs::Registry::global().counter("engine.giveups");
        giveups.add();
      }
      obs::trace_virtual_span(config.sim.trace_track, 0, "giveup",
                              "scenario", clock, timeout);
      clock += timeout;
      continue;
    }
    clock += round.time;
    result.iteration_time.add(round.time);
    result.latency.add(round.time);
  }

  harvest_cache();
  result.total_time = clock;
  return result;
}

TraceReplayResult replay_trace(SchemeKind kind, const Cluster& cluster,
                               const DelayTrace& trace,
                               const TraceReplayConfig& config) {
  HGC_REQUIRE(trace.num_workers() == cluster.size(),
              "trace must have one delay column per cluster worker");
  const std::size_t iterations =
      config.iterations == 0 ? trace.num_iterations() : config.iterations;
  HGC_REQUIRE(iterations > 0, "need at least one iteration");

  Rng construction_rng(config.seed);
  const std::size_t k =
      config.k == 0 ? 2 * cluster.size() : config.k;
  const auto scheme = make_scheme(kind, cluster.throughputs(), k, config.s,
                                  construction_rng);

  TraceReplayResult result;
  result.scheme = scheme->name();
  result.iterations = iterations;
  FixedLatencyLink link(config.sim.comm_latency);

  std::optional<DecodingCache> decoding_cache;
  if (config.decoding_cache_capacity > 0)
    decoding_cache.emplace(*scheme, config.decoding_cache_capacity);
  RoundOptions round_options;
  round_options.decoding_cache = decoding_cache ? &*decoding_cache : nullptr;
  round_options.trace_track = config.sim.trace_track;

  double clock = 0.0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const IterationConditions conditions = trace.conditions(iter);
    round_options.trace_time_base = clock;
    const RoundOutcome round =
        run_round(*scheme, cluster, conditions, link, round_options);
    if (!round.decoded) {
      ++result.failures;
      continue;
    }
    clock += round.time;
    result.iteration_time.add(round.time);
    result.latency.add(round.time);
  }
  if (decoding_cache) {
    result.decode_hits = decoding_cache->hits();
    result.decode_misses = decoding_cache->misses();
  }
  result.total_time = clock;
  return result;
}

std::vector<TraceReplayResult> replay_trace_comparison(
    const std::vector<SchemeKind>& kinds, const Cluster& cluster,
    const DelayTrace& trace, const TraceReplayConfig& config) {
  std::vector<TraceReplayResult> results;
  results.reserve(kinds.size());
  for (SchemeKind kind : kinds)
    results.push_back(replay_trace(kind, cluster, trace, config));
  return results;
}

}  // namespace hgc::engine
