#include "engine/delay_trace.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace hgc::engine {

DelayTrace::DelayTrace(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  HGC_REQUIRE(!rows_.empty(), "a delay trace needs at least one iteration");
  const std::size_t width = rows_.front().size();
  HGC_REQUIRE(width > 0, "a delay trace needs at least one worker");
  for (const auto& row : rows_)
    HGC_REQUIRE(row.size() == width, "delay trace rows must be rectangular");
}

double DelayTrace::at(std::size_t iteration, WorkerId w) const {
  HGC_REQUIRE(!rows_.empty(), "empty delay trace");
  HGC_REQUIRE(w < num_workers(), "worker id out of trace range");
  return rows_[iteration % rows_.size()][w];
}

IterationConditions DelayTrace::conditions(std::size_t iteration) const {
  HGC_REQUIRE(!rows_.empty(), "empty delay trace");
  const auto& row = rows_[iteration % rows_.size()];
  const std::size_t m = row.size();
  IterationConditions conditions;
  conditions.speed_factor.assign(m, 1.0);
  conditions.delay.assign(m, 0.0);
  conditions.faulted.assign(m, false);
  for (WorkerId w = 0; w < m; ++w) {
    if (row[w] < 0.0)
      conditions.faulted[w] = true;
    else
      conditions.delay[w] = row[w];
  }
  return conditions;
}

DelayTrace parse_delay_trace_csv(std::istream& in) {
  std::vector<std::vector<double>> rows;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim a trailing carriage return so CRLF traces parse too.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::vector<double> row;
    std::stringstream cells(line);
    std::string cell;
    while (std::getline(cells, cell, ',')) {
      std::size_t consumed = 0;
      double value = 0.0;
      bool ok = true;
      try {
        value = std::stod(cell, &consumed);
      } catch (const std::exception&) {
        ok = false;
      }
      if (ok && consumed < cell.size())
        ok = cell.find_first_not_of(" \t", consumed) == std::string::npos;
      HGC_REQUIRE(ok, "unparseable delay cell '" + cell + "' on line " +
                          std::to_string(line_number));
      row.push_back(value);
    }
    HGC_REQUIRE(!row.empty(),
                "empty delay row on line " + std::to_string(line_number));
    HGC_REQUIRE(rows.empty() || row.size() == rows.front().size(),
                "ragged delay row on line " + std::to_string(line_number));
    rows.push_back(std::move(row));
  }
  return DelayTrace(std::move(rows));
}

DelayTrace load_delay_trace_csv(const std::string& path) {
  std::ifstream in(path);
  HGC_REQUIRE(in.good(), "cannot open delay trace file: " + path);
  return parse_delay_trace_csv(in);
}

void write_delay_trace_csv(const DelayTrace& trace, std::ostream& out) {
  // Shortest round-trip representation (std::to_chars), not operator<<'s
  // default 6 significant digits: a saved trace must replay the exact same
  // doubles, or the "same trace row drives every scheme" fairness contract
  // quietly breaks after a save/load cycle.
  char buf[32];
  for (const auto& row : trace.rows()) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), row[i]);
      HGC_REQUIRE(ec == std::errc(), "delay value formatting failed");
      out.write(buf, static_cast<std::streamsize>(ptr - buf));
    }
    out << '\n';
  }
}

}  // namespace hgc::engine
