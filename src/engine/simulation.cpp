#include "engine/simulation.hpp"

#include <cmath>
#include <utility>

namespace hgc::engine {

EventId Simulation::schedule_at(double time, std::function<void()> action,
                                std::uint64_t tag) {
  HGC_REQUIRE(!std::isnan(time), "event time must not be NaN");
  HGC_REQUIRE(time >= now_, "cannot schedule an event in the past");
  return queue_.push(time, std::move(action), tag);
}

EventId Simulation::schedule_after(double delay, std::function<void()> action,
                                   std::uint64_t tag) {
  HGC_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  return queue_.push(now_ + delay, std::move(action), tag);
}

bool Simulation::step() {
  if (stopped_ || queue_.empty()) return false;
  Event event = queue_.pop();
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

std::size_t Simulation::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Simulation::run_until(double until) {
  HGC_REQUIRE(until >= now_, "cannot run the clock backwards");
  std::size_t count = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= until) {
    if (!step()) break;
    ++count;
  }
  if (!stopped_) now_ = until;
  return count;
}

}  // namespace hgc::engine
