// Binary-heap event queue for the discrete-event engine.
//
// Events are ordered by (time, tag, insertion sequence). The tag is a
// caller-supplied tie-break key — protocols that historically ordered
// simultaneous events by worker id (the SSP trainer's finish queue, the
// round's arrival ordering) pass the worker id as the tag and get exactly
// that order back. Untagged events fire FIFO among equal times. The total
// order makes every simulation deterministic — the property the experiment
// fairness contract and all trainer determinism tests lean on. The heap is
// hand-rolled rather than std::priority_queue so that cancelled events can
// be dropped lazily without popping live ones.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace hgc::engine {

/// Handle to a scheduled event, usable with EventQueue::cancel.
using EventId = std::uint64_t;

/// One scheduled callback.
struct Event {
  double time = 0.0;
  std::uint64_t tag = 0;  ///< caller tie-break; lower tags fire first
  EventId id = 0;         ///< insertion sequence; final FIFO tie-break
  std::function<void()> action;
};

/// Min-heap of events keyed by (time, tag, id), with lazy cancellation.
/// The pending-id set is the single source of truth for liveness: an id in
/// the heap but not in the set has been cancelled and is skipped on pop.
class EventQueue {
 public:
  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Schedule `action` at absolute `time`; returns a cancellation handle.
  /// `tag` breaks ties among equal times (see the file comment).
  EventId push(double time, std::function<void()> action,
               std::uint64_t tag = 0) {
    const EventId id = next_id_++;
    heap_.push_back({time, tag, id, std::move(action)});
    sift_up(heap_.size() - 1);
    pending_.insert(id);
    return id;
  }

  /// Cancel a pending event. Returns false when the event already ran,
  /// was already cancelled, or never existed.
  bool cancel(EventId id) {
    if (pending_.erase(id) == 0) return false;
    // Lazy removal parks cancelled entries in the heap until they surface
    // at the root — but cancelled far-future timers sink to the leaves and
    // would be retained (closures included) for the whole run. Compact once
    // they outnumber live events.
    if (heap_.size() >= 64 && 2 * pending_.size() < heap_.size()) compact();
    return true;
  }

  /// Remove and return the earliest live event. Requires !empty().
  Event pop() {
    drop_cancelled();
    HGC_ASSERT(!heap_.empty(), "pop on an empty event queue");
    Event out = std::move(heap_.front());
    remove_root();
    pending_.erase(out.id);
    return out;
  }

  /// Earliest live event's time. Requires !empty().
  double next_time() {
    drop_cancelled();
    HGC_ASSERT(!heap_.empty(), "next_time on an empty event queue");
    return heap_.front().time;
  }

 private:
  static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.id < b.id;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  void remove_root() {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void drop_cancelled() {
    while (!heap_.empty() && pending_.count(heap_.front().id) == 0)
      remove_root();
  }

  /// Drop every cancelled entry and re-heapify the survivors (Floyd).
  void compact() {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pending_.count(heap_[i].id) == 0) continue;
      if (keep != i) heap_[keep] = std::move(heap_[i]);
      ++keep;
    }
    heap_.resize(keep);
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }

  std::vector<Event> heap_;
  std::unordered_set<EventId> pending_;  // scheduled, not yet run/cancelled
  EventId next_id_ = 0;
};

}  // namespace hgc::engine
