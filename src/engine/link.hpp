// Channel adapters between engine actors and the transport models.
//
// A Link answers one question: "a message of `bytes` leaves `from` for `to`
// at `send_time` — when does it arrive, if ever?" The engine schedules the
// delivery event at that answer. Two adapters cover the existing transports:
// FixedLatencyLink reproduces the analytic simulator's constant result-
// transfer latency (SimParams::comm_latency), NetworkLink wraps the lossy
// SimulatedNetwork of net/ (latency + bandwidth + iid drops, seeded RNG).
#pragma once

#include <cstddef>
#include <optional>

#include "net/network.hpp"

namespace hgc::engine {

/// Point-to-point message transport as seen by the event engine.
class Link {
 public:
  virtual ~Link() = default;

  /// Arrival time of a `bytes`-sized message sent at `send_time`, or nullopt
  /// when the transport drops it. Must be >= send_time.
  virtual std::optional<double> transmit(NodeId from, NodeId to,
                                         std::size_t bytes,
                                         double send_time) = 0;
};

/// Lossless link with a constant per-message latency and infinite bandwidth
/// (the virtual-clock trainers' transport).
class FixedLatencyLink : public Link {
 public:
  explicit FixedLatencyLink(double latency = 0.0) : latency_(latency) {
    HGC_REQUIRE(latency >= 0.0, "latency must be non-negative");
  }

  std::optional<double> transmit(NodeId, NodeId, std::size_t,
                                 double send_time) override {
    return send_time + latency_;
  }

 private:
  double latency_;
};

/// Adapter over the seeded lossy network model; drops and byte accounting
/// stay inside the wrapped SimulatedNetwork.
class NetworkLink : public Link {
 public:
  explicit NetworkLink(SimulatedNetwork& network) : network_(&network) {}

  std::optional<double> transmit(NodeId from, NodeId to, std::size_t bytes,
                                 double send_time) override {
    return network_->transmit(from, to, bytes, send_time);
  }

 private:
  SimulatedNetwork* network_;
};

}  // namespace hgc::engine
