// Actor base for the discrete-event engine.
//
// An actor is an object whose behavior advances by scheduling events on the
// simulation it is bound to. The engine keeps actors deliberately thin: all
// state lives in the derived class, and the base only pins down the binding
// to a Simulation plus a diagnostic name.
#pragma once

#include <string>
#include <utility>

#include "engine/simulation.hpp"

namespace hgc::engine {

/// Base class for typed simulation participants.
class Actor {
 public:
  Actor(Simulation& sim, std::string name)
      : sim_(&sim), name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  Actor(Actor&&) = default;  // actors may live in containers

  Simulation& sim() const { return *sim_; }
  const std::string& name() const { return name_; }

 private:
  Simulation* sim_;
  std::string name_;
};

}  // namespace hgc::engine
