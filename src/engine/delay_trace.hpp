// Per-worker delay traces for trace-replay scenarios.
//
// Instead of drawing straggler conditions from a stochastic model, a replay
// run feeds the engine delays recorded from a real cluster (or crafted by
// hand). The on-disk format is plain CSV: one row per iteration, one column
// per worker, each cell the delay in seconds added to that worker's result
// that iteration. A negative cell marks a fail-stop fault (the result never
// arrives — the paper's "delay = infinity" limit). Lines starting with '#'
// and blank lines are skipped, so traces can carry their own provenance
// notes. Replays longer than the trace wrap around to the first row.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/straggler.hpp"

namespace hgc::engine {

/// A recorded (iterations × workers) delay schedule.
class DelayTrace {
 public:
  DelayTrace() = default;
  /// Rows must be non-empty and rectangular.
  explicit DelayTrace(std::vector<std::vector<double>> rows);

  std::size_t num_iterations() const { return rows_.size(); }
  std::size_t num_workers() const {
    return rows_.empty() ? 0 : rows_.front().size();
  }

  /// Recorded value for (iteration, worker); `iteration` wraps around the
  /// trace length. Negative = fault.
  double at(std::size_t iteration, WorkerId w) const;

  /// Conditions for one replayed iteration: unit speed factors, the traced
  /// delays, faults where the trace is negative.
  IterationConditions conditions(std::size_t iteration) const;

  const std::vector<std::vector<double>>& rows() const { return rows_; }

 private:
  std::vector<std::vector<double>> rows_;
};

/// Parse the CSV format described above. Throws std::invalid_argument on
/// ragged rows, unparseable cells, or an empty trace.
DelayTrace parse_delay_trace_csv(std::istream& in);

/// Load a trace from a CSV file; throws std::invalid_argument when the file
/// cannot be opened.
DelayTrace load_delay_trace_csv(const std::string& path);

/// Serialize back to CSV (round-trips through parse_delay_trace_csv).
void write_delay_trace_csv(const DelayTrace& trace, std::ostream& out);

}  // namespace hgc::engine
