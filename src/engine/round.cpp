#include "engine/round.hpp"

#include <algorithm>
#include <utility>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked_cast.hpp"
#include "util/error.hpp"

namespace hgc::engine {

MasterActor::MasterActor(Simulation& sim, const CodingScheme& scheme,
                         DecodingCache* decoding_cache,
                         DecodeStrategy strategy)
    : Actor(sim, "master"), decoder_(scheme, decoding_cache, strategy) {}

void MasterActor::begin_round(std::uint64_t iteration) {
  decoder_.reset();
  iteration_ = iteration;
  decode_time_ = std::numeric_limits<double>::infinity();
  results_used_ = 0;
}

void MasterActor::receive_result(WorkerId w, Vector coded) {
  if (decoder_.ready()) return;  // late arrival after the barrier released
  if (decoder_.add_result(w, std::move(coded))) {
    decode_time_ = sim().now();
    results_used_ = decoder_.results_received();
    // The BSP barrier is released; nothing later this round matters.
    sim().stop();
  }
}

void MasterActor::receive_frame(const std::vector<std::byte>& frame) {
  GradientMessage message = decode_message(frame);
  HGC_ASSERT(message.iteration == iteration_, "cross-iteration frame");
  receive_result(message.worker, std::move(message.payload));
}

// The diagnostic name is the bare role, not "worker-<id>": run_round builds
// m actors per round, and id'd names would mean m heap strings per round on
// the scale-bench hot path. The id stays queryable via id().
WorkerActor::WorkerActor(Simulation& sim, WorkerId id, const WorkerSpec& spec)
    : Actor(sim, "worker"), id_(id), spec_(spec) {}

double WorkerActor::begin_round(const CodingScheme& scheme,
                                const IterationConditions& conditions,
                                Link& link, NodeId master_node,
                                MasterActor& master,
                                const RoundOptions& options,
                                std::size_t& dropped) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Virtual-clock trace row for this worker (row 0 is the master's).
  const auto row = checked_cast<std::uint32_t>(id_ + 1);
  const std::uint32_t track = options.trace_track;
  const double base = options.trace_time_base;
  if (conditions.faulted[id_] || scheme.load(id_) == 0) {
    if (conditions.faulted[id_])
      obs::trace_virtual_instant(track, row, "fault", "engine", base);
    return kInf;
  }

  const double rate = spec_.throughput * conditions.speed_factor[id_];
  HGC_ASSERT(rate > 0.0, "effective worker rate must be positive");
  const double share = static_cast<double>(scheme.load(id_)) /
                       static_cast<double>(scheme.num_partitions());
  const double compute = share / rate;
  const double send_time = sim().now() + compute + conditions.delay[id_];
  obs::trace_virtual_span(track, row, "compute", "engine",
                          base + sim().now(), compute);
  if (conditions.delay[id_] > 0.0)
    obs::trace_virtual_span(track, row, "straggle", "engine",
                            base + sim().now() + compute,
                            conditions.delay[id_]);

  // Build the payload now (the transmission carries real bytes); timing-only
  // rounds ship an empty vector so only the event flow is exercised.
  Vector payload;
  std::vector<std::byte> frame;
  std::size_t bytes = 0;
  if (options.partition_gradients) {
    payload = encode_gradient(scheme, id_, *options.partition_gradients);
    if (options.wire_frames) {
      GradientMessage message;
      message.worker = checked_cast<std::uint32_t>(id_);
      message.iteration = options.iteration;
      message.payload = std::move(payload);
      frame = encode_message(message);
      bytes = frame.size();
    } else {
      bytes = payload.size() * sizeof(double);
    }
  }

  const auto arrival = link.transmit(id_, master_node, bytes, send_time);
  if (!arrival) {
    ++dropped;  // lost in flight: one more silent straggler
    obs::trace_virtual_instant(track, row, "lost", "engine",
                               base + send_time);
    return compute;
  }
  obs::trace_virtual_span(track, row, "transmit", "engine", base + send_time,
                          *arrival - send_time);
  // Tag = worker id: simultaneous arrivals reach the master in worker
  // order, the historical (time, worker) sort of the pre-engine loops.
  if (options.partition_gradients && options.wire_frames) {
    sim().schedule_at(*arrival,
                      [&master, frame = std::move(frame)] {
                        master.receive_frame(frame);
                      },
                      id_);
  } else {
    sim().schedule_at(*arrival,
                      [&master, w = id_, payload = std::move(payload)]() mutable {
                        master.receive_result(w, std::move(payload));
                      },
                      id_);
  }
  return compute;
}

RoundOutcome run_round(const CodingScheme& scheme, const Cluster& cluster,
                       const IterationConditions& conditions, Link& link,
                       const RoundOptions& options) {
  const std::size_t m = scheme.num_workers();
  HGC_REQUIRE(cluster.size() == m, "cluster size must match scheme workers");
  HGC_REQUIRE(conditions.size() == m, "conditions size must match workers");
  HGC_REQUIRE(!options.wire_frames || options.partition_gradients,
              "wire frames require partition gradients");

  Simulation sim;
  MasterActor master(sim, scheme, options.decoding_cache,
                     options.decode_strategy);
  master.begin_round(options.iteration);

  RoundOutcome outcome;
  outcome.compute_times.assign(m, std::numeric_limits<double>::infinity());

  // Launch in worker-id order so the link's RNG draws stay in the same
  // order as the pre-engine implementation.
  std::vector<WorkerActor> workers;
  workers.reserve(m);
  const NodeId master_node = m;
  for (WorkerId w = 0; w < m; ++w) {
    workers.emplace_back(sim, w, cluster.worker(w));
    outcome.compute_times[w] = workers.back().begin_round(
        scheme, conditions, link, master_node, master, options,
        outcome.dropped);
  }

  outcome.events_executed = sim.run();

  if (obs::metrics_enabled()) {
    static const obs::Counter rounds =
        obs::Registry::global().counter("engine.rounds");
    static const obs::Counter undecodable =
        obs::Registry::global().counter("engine.rounds_undecodable");
    static const obs::Counter events =
        obs::Registry::global().counter("engine.events");
    rounds.add();
    events.add(outcome.events_executed);
    if (!master.decoded()) undecodable.add();
  }

  if (!master.decoded()) {
    obs::trace_virtual_instant(options.trace_track, 0, "undecodable",
                               "engine", options.trace_time_base);
    return outcome;
  }

  if (obs::metrics_enabled()) {
    static const obs::StatHandle round_time =
        obs::Registry::global().stat("engine.round_time");
    static const obs::QuantileHandle round_latency =
        obs::Registry::global().quantile("engine.round_latency");
    round_time.observe(master.decode_time());
    round_latency.observe(master.decode_time());
  }
  obs::trace_virtual_span(options.trace_track, 0, "round", "engine",
                          options.trace_time_base, master.decode_time(),
                          static_cast<std::int64_t>(master.results_used()));

  outcome.decoded = true;
  outcome.time = master.decode_time();
  outcome.results_used = master.results_used();
  outcome.coefficients = master.coefficients();
  if (options.partition_gradients) outcome.aggregate = master.aggregate();

  // Resource usage: busy = computing time clipped to the round window.
  double busy_total = 0.0;
  for (WorkerId w = 0; w < m; ++w) {
    if (conditions.faulted[w]) continue;
    if (outcome.compute_times[w] == std::numeric_limits<double>::infinity())
      continue;  // idle worker, no data
    busy_total += std::min(outcome.compute_times[w], outcome.time);
  }
  outcome.resource_usage =
      busy_total / (static_cast<double>(m) * outcome.time);
  return outcome;
}

}  // namespace hgc::engine
