#include "scenario/dsl.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "engine/delay_trace.hpp"
#include "util/checked_cast.hpp"
#include "util/error.hpp"

namespace hgc::scenario {
namespace {

// --- Lexer ---------------------------------------------------------------

struct Token {
  enum Kind { kWord, kNumber, kSymbol };
  Kind kind;
  std::string text;
  double number = 0.0;
};

bool is_word_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_number_start(const std::string& line, std::size_t i) {
  const char c = line[i];
  if (std::isdigit(static_cast<unsigned char>(c))) return true;
  if ((c == '-' || c == '+' || c == '.') && i + 1 < line.size())
    return std::isdigit(static_cast<unsigned char>(line[i + 1]));
  return false;
}

/// Tokenize one line (comment already stripped). `fail` reports with the
/// line's location.
template <typename Fail>
std::vector<Token> tokenize(const std::string& line, const Fail& fail) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
    } else if (line.compare(i, 2, "->") == 0) {
      tokens.push_back({Token::kSymbol, "->"});
      i += 2;
    } else if (line.compare(i, 2, "..") == 0) {
      tokens.push_back({Token::kSymbol, ".."});
      i += 2;
    } else if (c == '{' || c == '}' || c == ',' || c == '@' || c == '[' ||
               c == ']' || c == '=') {
      tokens.push_back({Token::kSymbol, std::string(1, c)});
      ++i;
    } else if (is_number_start(line, i)) {
      // Scan a number, stopping before a ".." range separator.
      std::size_t j = i;
      if (line[j] == '-' || line[j] == '+') ++j;
      bool seen_dot = false, seen_exp = false;
      while (j < line.size()) {
        const char d = line[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !seen_dot && !seen_exp &&
                   line.compare(j, 2, "..") != 0) {
          seen_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !seen_exp &&
                   j + 1 < line.size() &&
                   (std::isdigit(static_cast<unsigned char>(line[j + 1])) ||
                    ((line[j + 1] == '-' || line[j + 1] == '+') &&
                     j + 2 < line.size() &&
                     std::isdigit(
                         static_cast<unsigned char>(line[j + 2]))))) {
          seen_exp = true;
          j += 2;
        } else {
          break;
        }
      }
      const std::string text = line.substr(i, j - i);
      // A digit blob running straight into letters or another '.' is a
      // typo ("1.2.3", "12abc"), not two adjacent tokens.
      if (j < line.size() &&
          (is_word_char(line[j]) ||
           (line[j] == '.' && line.compare(j, 2, "..") != 0)))
        fail("malformed number '" + line.substr(i, j - i + 1) + "...'");
      try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used != text.size()) throw std::invalid_argument(text);
        tokens.push_back({Token::kNumber, text, value});
      } catch (const std::exception&) {
        fail("malformed number '" + text + "'");
      }
      i = j;
    } else if (is_word_start(c)) {
      std::size_t j = i + 1;
      while (j < line.size() && is_word_char(line[j])) ++j;
      tokens.push_back({Token::kWord, line.substr(i, j - i)});
      i = j;
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
  }
  return tokens;
}

// --- Statement cursor ----------------------------------------------------

/// Sequential reader over one line's tokens with located diagnostics.
class Cursor {
 public:
  Cursor(const std::vector<Token>& tokens, const std::string& source,
         std::size_t line)
      : tokens_(tokens), source_(source), line_(line) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(source_, line_, message);
  }

  bool done() const { return i_ >= tokens_.size(); }

  /// True (and consumes) when the next token is the word `text`.
  bool accept_word(const std::string& text) {
    if (done() || tokens_[i_].kind != Token::kWord ||
        tokens_[i_].text != text)
      return false;
    ++i_;
    return true;
  }

  /// True (and consumes) when the next token is the symbol `text`.
  bool accept_symbol(const std::string& text) {
    if (done() || tokens_[i_].kind != Token::kSymbol ||
        tokens_[i_].text != text)
      return false;
    ++i_;
    return true;
  }

  std::string expect_word(const std::string& what) {
    if (done() || tokens_[i_].kind != Token::kWord)
      fail("expected " + what + describe_here());
    return tokens_[i_++].text;
  }

  void expect_symbol(const std::string& text) {
    if (!accept_symbol(text))
      fail("expected '" + text + "'" + describe_here());
  }

  double expect_number(const std::string& what) {
    if (done() || tokens_[i_].kind != Token::kNumber)
      fail("expected " + what + describe_here());
    return tokens_[i_++].number;
  }

  /// A non-negative integer (worker id, count, row index). The range
  /// check comes before the cast: converting an out-of-range double to
  /// size_t is undefined behaviour, not just a wrong value.
  std::size_t expect_index(const std::string& what) {
    const double v = expect_number(what);
    if (!(v >= 0.0) || v > 9007199254740992.0 /* 2^53 */ ||
        v != std::floor(v))
      fail(what + " must be a non-negative integer");
    return static_cast<std::size_t>(v);
  }

  void expect_end() {
    if (!done())
      fail("unexpected '" + tokens_[i_].text + "' after the statement");
  }

 private:
  std::string describe_here() const {
    if (done()) return " at end of line";
    return ", got '" + tokens_[i_].text + "'";
  }

  const std::vector<Token>& tokens_;
  std::size_t i_ = 0;
  const std::string& source_;
  std::size_t line_;
};

// --- Located statement records ------------------------------------------

struct LocatedChurn {
  engine::ChurnEvent event;
  std::size_t line;
};

struct LocatedDrift {
  engine::DriftWindow window;
  std::size_t line;
};

struct LocatedBurst {
  engine::CorrelatedStragglers burst;
  std::size_t line;
};

std::string trimmed_of_comment(const std::string& raw) {
  std::string line = raw;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  return line;
}

std::vector<std::string> whitespace_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (in >> field) fields.push_back(field);
  return fields;
}

}  // namespace

engine::ScenarioScript parse_scenario(std::istream& in,
                                      const std::string& source,
                                      const std::string& base_dir) {
  engine::ScenarioScript script;
  bool saw_workers = false;
  std::vector<LocatedChurn> churn;
  std::vector<LocatedDrift> drifts;
  std::vector<LocatedBurst> bursts;
  std::size_t splice_line = 0;  // 0 = no splice statement yet
  std::size_t repeat_line = 0;  // 0 = no repeat statement yet

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trimmed_of_comment(raw);
    const std::vector<std::string> fields = whitespace_fields(line);
    if (fields.empty()) continue;

    const auto fail = [&](const std::string& message) -> void {
      throw ParseError(source, line_no, message);
    };

    if (!saw_workers && fields[0] != "workers")
      fail("the first statement must declare 'workers <count>'");

    // `splice trace <path>` carries a filesystem path, which the token
    // grammar (words, numbers, punctuation) cannot spell — parse it from
    // the raw whitespace fields instead.
    if (fields[0] == "splice") {
      if (splice_line != 0)
        fail("duplicate splice statement (first on line " +
             std::to_string(splice_line) + ")");
      if (fields.size() < 3 || fields[1] != "trace")
        fail("splice wants: splice trace <path> [rows <a>..<b>]");
      const std::string& path_text = fields[2];
      std::size_t row_lo = 0;
      std::size_t row_hi = static_cast<std::size_t>(-1);
      if (fields.size() == 5 && fields[3] == "rows") {
        const std::size_t dots = fields[4].find("..");
        if (dots == std::string::npos)
          fail("splice row range must be <a>..<b>");
        const std::vector<Token> range = tokenize(
            fields[4].substr(0, dots) + " " + fields[4].substr(dots + 2),
            fail);
        Cursor cursor(range, source, line_no);
        row_lo = cursor.expect_index("splice row");
        row_hi = cursor.expect_index("splice row");
        cursor.expect_end();
        if (row_lo > row_hi) fail("splice row range must be lo..hi");
      } else if (fields.size() != 3) {
        fail("splice wants: splice trace <path> [rows <a>..<b>]");
      }

      std::filesystem::path path(path_text);
      if (path.is_relative() && !base_dir.empty())
        path = std::filesystem::path(base_dir) / path;
      engine::DelayTrace full;
      try {
        full = engine::load_delay_trace_csv(path.string());
      } catch (const std::exception& e) {
        fail(e.what());
      }
      if (row_hi == static_cast<std::size_t>(-1))
        row_hi = full.num_iterations() - 1;
      if (row_hi >= full.num_iterations())
        fail("splice row range " + std::to_string(row_lo) + ".." +
             std::to_string(row_hi) + " exceeds the trace (" +
             std::to_string(full.num_iterations()) + " rows)");
      std::vector<std::vector<double>> rows(
          full.rows().begin() + static_cast<std::ptrdiff_t>(row_lo),
          full.rows().begin() + static_cast<std::ptrdiff_t>(row_hi) + 1);
      script.splice = engine::DelayTrace(std::move(rows));
      splice_line = line_no;
      continue;
    }

    const std::vector<Token> tokens = tokenize(line, fail);
    Cursor cursor(tokens, source, line_no);
    const std::string keyword = cursor.expect_word("a statement keyword");

    if (keyword == "workers") {
      if (saw_workers) fail("duplicate 'workers' declaration");
      script.workers = cursor.expect_index("worker count");
      cursor.expect_end();
      if (script.workers == 0) fail("a scenario needs at least one worker");
      saw_workers = true;
    } else if (keyword == "churn") {
      engine::ChurnEvent event;
      if (cursor.accept_word("leave")) {
        event.join = false;
        event.worker = cursor.expect_index("the leaving worker id");
        cursor.expect_symbol("@");
      } else if (cursor.accept_word("join")) {
        event.join = true;
        bool saw_vcpus = false, saw_throughput = false;
        // The attribute loop consumes the '@' that ends it.
        while (!cursor.accept_symbol("@")) {
          const std::string attr = cursor.expect_word("'@ <time>'");
          cursor.expect_symbol("=");
          if (attr == "vcpus" && !saw_vcpus) {
            const std::size_t vcpus = cursor.expect_index("vcpus");
            if (vcpus == 0) fail("vcpus must be at least 1");
            event.spec.vcpus = checked_cast<unsigned>(vcpus);
            saw_vcpus = true;
          } else if (attr == "throughput" && !saw_throughput) {
            event.spec.throughput = cursor.expect_number("throughput");
            if (event.spec.throughput <= 0.0)
              fail("throughput must be positive");
            saw_throughput = true;
          } else {
            fail("unknown churn join attribute '" + attr + "'");
          }
        }
        // Mirror Cluster::from_vcpu_histogram's convention: 1.0 per vCPU
        // unless the statement says otherwise.
        if (!saw_throughput)
          event.spec.throughput = static_cast<double>(event.spec.vcpus);
      } else {
        fail("churn wants 'leave' or 'join'");
      }
      event.time = cursor.expect_number("the event time");
      cursor.expect_end();
      if (event.time < 0.0) fail("churn time must be non-negative");
      churn.push_back({event, line_no});
    } else if (keyword == "drift") {
      engine::DriftWindow window;
      window.worker = cursor.expect_index("the drifting worker id");
      if (!cursor.accept_word("speed"))
        fail("drift wants: drift <worker> speed <a> -> <b> over [<t0>, "
             "<t1>]");
      window.from = cursor.expect_number("the starting speed factor");
      cursor.expect_symbol("->");
      window.to = cursor.expect_number("the ending speed factor");
      if (!cursor.accept_word("over"))
        fail("drift wants 'over [<t0>, <t1>]' after the speed ramp");
      cursor.expect_symbol("[");
      window.t0 = cursor.expect_number("the window start time");
      cursor.expect_symbol(",");
      window.t1 = cursor.expect_number("the window end time");
      cursor.expect_symbol("]");
      cursor.expect_end();
      if (window.from <= 0.0 || window.to <= 0.0)
        fail("drift speed factors must be positive");
      if (window.t0 < 0.0) fail("drift window start must be non-negative");
      if (window.t1 <= window.t0)
        fail("drift window is empty: t1 must exceed t0");
      drifts.push_back({window, line_no});
    } else if (keyword == "correlated") {
      if (!cursor.accept_word("stragglers"))
        fail("correlated wants: correlated stragglers {<ids>} p=<prob> "
             "dur=<sec> (delay=<sec> | fault)");
      engine::CorrelatedStragglers burst;
      cursor.expect_symbol("{");
      do {
        const std::size_t id = cursor.expect_index("a worker id");
        if (std::find(burst.workers.begin(), burst.workers.end(), id) !=
            burst.workers.end())
          fail("duplicate worker " + std::to_string(id) +
               " in straggler set");
        burst.workers.push_back(id);
      } while (cursor.accept_symbol(","));
      cursor.expect_symbol("}");
      bool saw_p = false, saw_dur = false, saw_delay = false;
      while (!cursor.done()) {
        const std::string attr = cursor.expect_word("an attribute");
        if (attr == "fault") {
          if (burst.fault) fail("duplicate 'fault'");
          burst.fault = true;
          continue;
        }
        cursor.expect_symbol("=");
        if (attr == "p" && !saw_p) {
          burst.probability = cursor.expect_number("p");
          saw_p = true;
        } else if (attr == "dur" && !saw_dur) {
          burst.duration = cursor.expect_number("dur");
          saw_dur = true;
        } else if (attr == "delay" && !saw_delay) {
          burst.delay = cursor.expect_number("delay");
          saw_delay = true;
        } else {
          fail("unknown correlated-straggler attribute '" + attr + "'");
        }
      }
      if (!saw_p)
        fail("correlated stragglers need p=<probability>");
      if (burst.probability <= 0.0 || burst.probability > 1.0)
        fail("p must be in (0, 1]");
      if (!saw_dur) fail("correlated stragglers need dur=<seconds>");
      if (burst.duration <= 0.0) fail("dur must be positive");
      if (burst.fault && saw_delay)
        fail("give either delay=<seconds> or fault, not both");
      if (!burst.fault && (!saw_delay || burst.delay <= 0.0))
        fail("correlated stragglers need delay=<seconds> or fault");
      bursts.push_back({std::move(burst), line_no});
    } else if (keyword == "repeat") {
      if (repeat_line != 0)
        fail("duplicate repeat statement (first on line " +
             std::to_string(repeat_line) + ")");
      if (cursor.accept_word("forever")) {
        script.splice_repeat = 0;
      } else {
        script.splice_repeat = cursor.expect_index("the repeat count");
        if (script.splice_repeat == 0)
          fail("repeat count must be at least 1 (or 'forever')");
      }
      cursor.expect_end();
      repeat_line = line_no;
    } else {
      fail("unknown statement '" + keyword + "'");
    }
  }

  if (!saw_workers)
    throw ParseError(source, std::max<std::size_t>(line_no, 1),
                     "scenario is empty: declare 'workers <count>' first");

  // --- Whole-program validation ------------------------------------------

  // Churn statements must already be in time order (the engine applies them
  // as written; silently re-sorting would hide schedule typos).
  for (std::size_t i = 1; i < churn.size(); ++i)
    if (churn[i].event.time < churn[i - 1].event.time)
      throw ParseError(source, churn[i].line,
                       "churn events must be in non-decreasing time order");

  // Walk the schedule to know which stable ids are alive when each leave
  // fires, and how many ids ever exist.
  std::set<std::size_t> alive;
  for (std::size_t id = 0; id < script.workers; ++id) alive.insert(id);
  std::size_t next_id = script.workers;
  for (const LocatedChurn& entry : churn) {
    if (entry.event.join) {
      alive.insert(next_id++);
    } else if (alive.count(entry.event.worker) == 0) {
      const bool never = entry.event.worker >= next_id;
      throw ParseError(
          source, entry.line,
          "unknown worker " + std::to_string(entry.event.worker) +
              (never ? ": only ids 0.." + std::to_string(next_id - 1) +
                           " exist here"
                     : ": it has already left"));
    } else {
      alive.erase(entry.event.worker);
    }
  }
  const std::size_t total_ids = next_id;

  const auto check_id = [&](std::size_t worker, std::size_t line,
                            const std::string& where) {
    if (worker >= total_ids)
      throw ParseError(source, line,
                       "unknown worker " + std::to_string(worker) + " in " +
                           where + ": only ids 0.." +
                           std::to_string(total_ids - 1) + " ever exist");
  };
  for (const LocatedDrift& entry : drifts)
    check_id(entry.window.worker, entry.line, "drift");
  for (const LocatedBurst& entry : bursts)
    for (std::size_t id : entry.burst.workers)
      check_id(id, entry.line, "the straggler set");

  // A worker's speed factor must come from at most one ramp at any time.
  std::map<std::size_t, std::vector<const LocatedDrift*>> by_worker;
  for (const LocatedDrift& entry : drifts)
    by_worker[entry.window.worker].push_back(&entry);
  for (auto& [worker, windows] : by_worker) {
    std::sort(windows.begin(), windows.end(),
              [](const LocatedDrift* a, const LocatedDrift* b) {
                return a->window.t0 < b->window.t0;
              });
    for (std::size_t i = 1; i < windows.size(); ++i) {
      const engine::DriftWindow& prev = windows[i - 1]->window;
      const engine::DriftWindow& next = windows[i]->window;
      if (next.t0 < prev.t1) {
        std::ostringstream os;
        os << "drift windows for worker " << worker << " overlap (["
           << prev.t0 << ", " << prev.t1 << "] and [" << next.t0 << ", "
           << next.t1 << "])";
        throw ParseError(
            source, std::max(windows[i - 1]->line, windows[i]->line),
            os.str());
      }
    }
  }

  if (splice_line != 0 &&
      script.splice.num_workers() != script.workers)
    throw ParseError(source, splice_line,
                     "spliced trace has " +
                         std::to_string(script.splice.num_workers()) +
                         " columns but the scenario declares " +
                         std::to_string(script.workers) + " workers");
  if (repeat_line != 0 && splice_line == 0)
    throw ParseError(source, repeat_line,
                     "repeat needs a 'splice trace' statement to repeat");

  script.churn.reserve(churn.size());
  for (LocatedChurn& entry : churn) script.churn.push_back(entry.event);
  script.drifts.reserve(drifts.size());
  for (LocatedDrift& entry : drifts) script.drifts.push_back(entry.window);
  script.bursts.reserve(bursts.size());
  for (LocatedBurst& entry : bursts)
    script.bursts.push_back(std::move(entry.burst));
  return script;
}

engine::ScenarioScript load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  HGC_REQUIRE(in.good(), "cannot open scenario file: " + path);
  return parse_scenario(in, path,
                        std::filesystem::path(path).parent_path().string());
}

std::string scenario_name(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

}  // namespace hgc::scenario
