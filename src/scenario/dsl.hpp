// Operator-authored scenario DSL.
//
// The sweep's scenario axis used to offer exactly three hard-coded points
// (static, a demo churn schedule, a demo delay trace); any other failure
// narrative meant editing C++. This parser turns a small line-oriented text
// format into an engine::ScenarioScript, so churn, drift, correlated
// straggler bursts and trace splices are authored as data and gridded over
// with `hgc_sweep --grid "...;scenario_file=..."` — no recompile.
//
// One statement per line; `#` starts a comment; blank lines are skipped.
// Times are virtual seconds on the engine clock, worker ids are stable
// roster ids (the initial cluster is 0..m-1, every join allocates the next
// id). The grammar:
//
//   workers <m>                      # required first statement; must match
//                                    # the cluster the grid runs the file on
//   churn leave <id> @ <t>           # events must be in time order
//   churn join [vcpus=<n>] [throughput=<x>] @ <t>
//                                    # throughput defaults to 1.0 per vCPU
//   drift <id> speed <a> -> <b> over [<t0>, <t1>]
//                                    # linear speed-factor ramp; a before
//                                    # t0, b after t1
//   correlated stragglers {<id>, <id>, ...} p=<prob> dur=<sec>
//       (delay=<sec> | fault)        # one statement = one burst process
//   splice trace <path> [rows <a>..<b>]
//                                    # per-iteration base delays; relative
//                                    # paths resolve against the .scn file
//   repeat (<n> | forever)           # passes over the spliced rows
//                                    # (default 1; forever wraps)
//
// Every diagnostic carries the offending line number. Validation catches
// what a static pass can: unknown statement keywords, unsorted churn times,
// workers that never exist (or have already left) at the moment an effect
// names them, overlapping drift windows, malformed numbers and ranges.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "engine/scenario.hpp"

namespace hgc::scenario {

/// A syntax or validation error in a scenario file, pointing at the
/// offending line. what() reads "<source>:<line>: <message>".
class ParseError : public std::invalid_argument {
 public:
  ParseError(const std::string& source, std::size_t line,
             const std::string& message)
      : std::invalid_argument(source + ":" + std::to_string(line) + ": " +
                              message),
        line_(line) {}

  /// 1-based line number the error points at.
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parse and validate a scenario program. `source` names the input in
/// diagnostics; relative `splice trace` paths resolve against `base_dir`
/// (empty = the process working directory). Throws ParseError.
engine::ScenarioScript parse_scenario(std::istream& in,
                                      const std::string& source = "<scenario>",
                                      const std::string& base_dir = "");

/// Load a scenario file; splice paths resolve relative to the file's
/// directory. Throws std::invalid_argument when the file cannot be opened
/// and ParseError on bad content.
engine::ScenarioScript load_scenario_file(const std::string& path);

/// Display name of a scenario file: the basename without its extension
/// ("examples/churn_drift.scn" → "churn_drift"). Used as the value on the
/// sweep's scenario axis.
std::string scenario_name(const std::string& path);

}  // namespace hgc::scenario
