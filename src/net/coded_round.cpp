#include "net/coded_round.hpp"

#include <utility>

#include "engine/link.hpp"
#include "engine/round.hpp"
#include "util/error.hpp"

namespace hgc {

NetworkRoundResult run_coded_round(
    const CodingScheme& scheme, const Cluster& cluster,
    const IterationConditions& conditions,
    const std::vector<Vector>& partition_gradients, SimulatedNetwork& network,
    std::uint64_t iteration) {
  HGC_REQUIRE(network.nodes() >= scheme.num_workers() + 1,
              "network needs one node per worker plus the master");

  // Full-payload round on the event engine: serialize → transmit over the
  // lossy link → parse in arrival order → streaming decode.
  engine::NetworkLink link(network);
  engine::RoundOptions options;
  options.partition_gradients = &partition_gradients;
  options.wire_frames = true;
  options.iteration = iteration;
  engine::RoundOutcome round =
      engine::run_round(scheme, cluster, conditions, link, options);

  NetworkRoundResult result;
  result.decoded = round.decoded;
  result.dropped = round.dropped;
  if (round.decoded) {
    result.time = round.time;
    result.results_used = round.results_used;
    result.aggregate = std::move(round.aggregate);
  }
  return result;
}

}  // namespace hgc
