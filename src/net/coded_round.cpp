#include "net/coded_round.hpp"

#include <algorithm>

#include "core/decoder.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"

namespace hgc {

NetworkRoundResult run_coded_round(
    const CodingScheme& scheme, const Cluster& cluster,
    const IterationConditions& conditions,
    const std::vector<Vector>& partition_gradients, SimulatedNetwork& network,
    std::uint64_t iteration) {
  const std::size_t m = scheme.num_workers();
  HGC_REQUIRE(cluster.size() == m, "cluster size must match scheme workers");
  HGC_REQUIRE(conditions.size() == m, "conditions size mismatch");
  HGC_REQUIRE(network.nodes() >= m + 1,
              "network needs one node per worker plus the master");
  const NodeId master = m;
  const std::size_t k = scheme.num_partitions();

  NetworkRoundResult result;

  // Worker side: compute, encode, serialize, transmit.
  struct Arrival {
    double time;
    std::vector<std::byte> frame;
  };
  std::vector<Arrival> arrivals;
  for (WorkerId w = 0; w < m; ++w) {
    if (conditions.faulted[w] || scheme.load(w) == 0) continue;
    const double rate =
        cluster.worker(w).throughput * conditions.speed_factor[w];
    const double share =
        static_cast<double>(scheme.load(w)) / static_cast<double>(k);
    const double send_time = share / rate + conditions.delay[w];

    GradientMessage message;
    message.worker = static_cast<std::uint32_t>(w);
    message.iteration = iteration;
    message.payload = encode_gradient(scheme, w, partition_gradients);
    std::vector<std::byte> frame = encode_message(message);

    const auto arrival =
        network.transmit(w, master, frame.size(), send_time);
    if (!arrival) {
      ++result.dropped;  // lost in flight: one more silent straggler
      continue;
    }
    arrivals.push_back({*arrival, std::move(frame)});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.time < b.time; });

  // Master side: parse frames in arrival order, decode at the earliest
  // sufficient set.
  StreamingDecoder decoder(scheme);
  for (Arrival& arrival : arrivals) {
    GradientMessage message = decode_message(arrival.frame);
    HGC_ASSERT(message.iteration == iteration, "cross-iteration frame");
    decoder.add_result(message.worker, std::move(message.payload));
    if (decoder.ready()) {
      result.decoded = true;
      result.time = arrival.time;
      result.results_used = decoder.results_received();
      result.aggregate = decoder.aggregate();
      break;
    }
  }
  return result;
}

}  // namespace hgc
