// One full coded aggregation round over the simulated network: every worker
// computes its partial gradients, encodes, serializes (real bytes, real
// checksums), transmits to the master; the master parses arrivals in time
// order and stops at the first decodable set.
#pragma once

#include "cluster/cluster.hpp"
#include "cluster/straggler.hpp"
#include "core/coding_scheme.hpp"
#include "net/network.hpp"

namespace hgc {

/// Outcome of one networked round.
struct NetworkRoundResult {
  bool decoded = false;
  double time = 0.0;              ///< master decode time
  std::size_t results_used = 0;   ///< arrivals consumed before decoding
  std::size_t dropped = 0;        ///< messages lost in flight this round
  Vector aggregate;               ///< decoded Σ g_j (empty if !decoded)
};

/// Run one round. `partition_gradients[j]` is g_j (dimension shared).
/// Workers are network nodes 0..m-1; the master is node m (the network must
/// have at least m+1 nodes). `iteration` tags the frames.
NetworkRoundResult run_coded_round(
    const CodingScheme& scheme, const Cluster& cluster,
    const IterationConditions& conditions,
    const std::vector<Vector>& partition_gradients, SimulatedNetwork& network,
    std::uint64_t iteration = 0);

}  // namespace hgc
