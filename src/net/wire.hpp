// Wire format for coded-gradient messages.
//
// The QingCloud deployment ships coded gradients between VMs; this module is
// the corresponding wire layer: a versioned, checksummed, little-endian
// framing for (worker, iteration, payload) triples. Deserialization is
// strict — truncation, bad magic, version skew, or checksum mismatch throw
// WireError rather than returning garbage into the decoder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace hgc {

/// Thrown on any malformed frame.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One worker's coded result for one iteration.
struct GradientMessage {
  std::uint32_t worker = 0;
  std::uint64_t iteration = 0;
  Vector payload;

  bool operator==(const GradientMessage& other) const = default;
};

/// CRC-32 (IEEE 802.3, reflected) of a byte span.
std::uint32_t crc32(std::span<const std::byte> bytes);

/// Serialize to a self-contained frame:
/// magic(4) version(2) worker(4) iteration(8) count(4) payload(8·count) crc(4)
std::vector<std::byte> encode_message(const GradientMessage& message);

/// Parse a frame produced by encode_message. Throws WireError on anything
/// malformed.
GradientMessage decode_message(std::span<const std::byte> bytes);

/// Frame size in bytes for a payload of `count` doubles.
std::size_t frame_size(std::size_t count);

}  // namespace hgc
