#include "net/network.hpp"

#include "util/error.hpp"

namespace hgc {

SimulatedNetwork::SimulatedNetwork(std::size_t nodes, LinkParams defaults,
                                   Rng rng)
    : nodes_(nodes), links_(nodes * nodes, defaults), rng_(rng) {
  HGC_REQUIRE(nodes > 0, "network needs at least one node");
  HGC_REQUIRE(defaults.latency >= 0.0 && defaults.bytes_per_second > 0.0 &&
                  defaults.drop_probability >= 0.0 &&
                  defaults.drop_probability <= 1.0,
              "invalid default link parameters");
}

std::size_t SimulatedNetwork::index(NodeId from, NodeId to) const {
  HGC_REQUIRE(from < nodes_ && to < nodes_, "node id out of range");
  return from * nodes_ + to;
}

void SimulatedNetwork::set_link(NodeId from, NodeId to, LinkParams params) {
  HGC_REQUIRE(params.latency >= 0.0 && params.bytes_per_second > 0.0 &&
                  params.drop_probability >= 0.0 &&
                  params.drop_probability <= 1.0,
              "invalid link parameters");
  links_[index(from, to)] = params;
}

const LinkParams& SimulatedNetwork::link(NodeId from, NodeId to) const {
  return links_[index(from, to)];
}

std::optional<double> SimulatedNetwork::transmit(NodeId from, NodeId to,
                                                 std::size_t bytes,
                                                 double send_time) {
  HGC_REQUIRE(send_time >= 0.0, "send time must be non-negative");
  const LinkParams& params = links_[index(from, to)];
  ++sent_;
  bytes_sent_ += bytes;
  if (params.drop_probability > 0.0 &&
      rng_.bernoulli(params.drop_probability)) {
    ++dropped_;
    return std::nullopt;
  }
  return send_time + params.latency +
         static_cast<double>(bytes) / params.bytes_per_second;
}

}  // namespace hgc
