#include "net/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "util/checked_cast.hpp"
#include "util/error.hpp"

namespace hgc {
namespace {

constexpr std::uint32_t kMagic = 0x48474331;  // "HGC1"
constexpr std::uint16_t kVersion = 1;

static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "mixed-endian platforms unsupported");

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t value = i;
      for (int bit = 0; bit < 8; ++bit)
        value = (value >> 1) ^ ((value & 1) ? 0xedb88320u : 0u);
      t[i] = value;
    }
    return t;
  }();
  return table;
}

/// Append an unsigned integer little-endian.
template <typename T>
void put(std::vector<std::byte>& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xff));
}

/// Read an unsigned integer little-endian at `offset`, advancing it.
template <typename T>
T get(std::span<const std::byte> bytes, std::size_t& offset) {
  if (offset + sizeof(T) > bytes.size())
    throw WireError("frame truncated");
  // Accumulate in the widest unsigned type: for sub-int T the shift would
  // promote through (signed) int, and |= back into T is a narrowing the
  // compiler rightly flags.
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    value |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(bytes[offset + i]))
             << (8 * i);
  offset += sizeof(T);
  return static_cast<T>(value);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes) {
  std::uint32_t crc = 0xffffffffu;
  for (std::byte b : bytes)
    crc = (crc >> 8) ^
          crc_table()[(crc ^ static_cast<std::uint8_t>(b)) & 0xff];
  return crc ^ 0xffffffffu;
}

std::size_t frame_size(std::size_t count) {
  return 4 + 2 + 4 + 8 + 4 + 8 * count + 4;
}

std::vector<std::byte> encode_message(const GradientMessage& message) {
  std::vector<std::byte> out;
  out.reserve(frame_size(message.payload.size()));
  put<std::uint32_t>(out, kMagic);
  put<std::uint16_t>(out, kVersion);
  put<std::uint32_t>(out, message.worker);
  put<std::uint64_t>(out, message.iteration);
  // The length field is 32-bit on the wire; checked_cast turns a >4 GiB
  // payload into a loud error instead of a truncated frame.
  put<std::uint32_t>(out, checked_cast<std::uint32_t>(message.payload.size()));
  for (double v : message.payload)
    put<std::uint64_t>(out, std::bit_cast<std::uint64_t>(v));
  const std::uint32_t checksum =
      crc32(std::span<const std::byte>(out.data(), out.size()));
  put<std::uint32_t>(out, checksum);
  return out;
}

GradientMessage decode_message(std::span<const std::byte> bytes) {
  if (bytes.size() < frame_size(0)) throw WireError("frame too short");
  // Verify the trailing checksum over everything before it.
  {
    std::size_t tail = bytes.size() - 4;
    const std::uint32_t expected = crc32(bytes.subspan(0, tail));
    std::size_t offset = tail;
    const auto stored = get<std::uint32_t>(bytes, offset);
    if (stored != expected) throw WireError("checksum mismatch");
  }

  std::size_t offset = 0;
  if (get<std::uint32_t>(bytes, offset) != kMagic)
    throw WireError("bad magic");
  if (get<std::uint16_t>(bytes, offset) != kVersion)
    throw WireError("unsupported version");

  GradientMessage message;
  message.worker = get<std::uint32_t>(bytes, offset);
  message.iteration = get<std::uint64_t>(bytes, offset);
  const auto count = get<std::uint32_t>(bytes, offset);
  if (bytes.size() != frame_size(count))
    throw WireError("frame length does not match payload count");
  message.payload.resize(count);
  for (std::uint32_t i = 0; i < count; ++i)
    message.payload[i] =
        std::bit_cast<double>(get<std::uint64_t>(bytes, offset));
  return message;
}

}  // namespace hgc
