// Simulated point-to-point network with latency, bandwidth and loss.
//
// Message loss is one more way a result can "straggle forever": gradient
// coding absorbs up to s lost results per iteration with zero retransmission
// machinery, which run_coded_round() demonstrates end to end (serialize →
// transmit → maybe drop → parse → streaming decode).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Node index; workers are 0..m-1, the master is node m by convention.
using NodeId = std::size_t;

/// Per-link characteristics.
struct LinkParams {
  double latency = 0.0;             ///< seconds, fixed per message
  double bytes_per_second = 1e9;    ///< transfer rate
  double drop_probability = 0.0;    ///< iid per message
};

/// Deterministic (seeded) network model over a fixed set of nodes.
class SimulatedNetwork {
 public:
  SimulatedNetwork(std::size_t nodes, LinkParams defaults, Rng rng);

  /// Override one directed link.
  void set_link(NodeId from, NodeId to, LinkParams params);

  const LinkParams& link(NodeId from, NodeId to) const;

  /// Transmit `bytes` from → to starting at `send_time`. Returns the arrival
  /// time, or nullopt when the message is dropped.
  std::optional<double> transmit(NodeId from, NodeId to, std::size_t bytes,
                                 double send_time);

  std::size_t nodes() const { return nodes_; }
  std::size_t messages_sent() const { return sent_; }
  std::size_t messages_dropped() const { return dropped_; }
  std::size_t bytes_sent() const { return bytes_sent_; }

 private:
  std::size_t index(NodeId from, NodeId to) const;

  std::size_t nodes_;
  std::vector<LinkParams> links_;  // dense (from, to) matrix
  Rng rng_;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t bytes_sent_ = 0;
};

}  // namespace hgc
