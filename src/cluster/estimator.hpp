// Online throughput estimation ("which can be estimated by sampling",
// Section III-C).
//
// The master observes how long each worker took to compute its share every
// iteration and maintains an exponentially-weighted moving average of the
// implied throughput. Feeding these estimates back into scheme construction
// closes the loop the paper leaves to the operator: the code adapts when the
// cluster drifts (a VM slows down, a noisy neighbor appears).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace hgc {

/// Per-worker EWMA throughput estimator.
class ThroughputEstimator {
 public:
  /// `smoothing` ∈ (0, 1]: weight of the newest observation (1 = no memory).
  /// `initial` seeds the estimates (e.g. uniform when nothing is known).
  ThroughputEstimator(Throughputs initial, double smoothing);

  /// Record that worker w processed `work_fraction` of the dataset in
  /// `seconds` of pure compute. Ignores non-positive or non-finite inputs
  /// (faulted workers produce +inf durations).
  void observe(WorkerId w, double work_fraction, double seconds);

  const Throughputs& estimates() const { return estimates_; }
  std::size_t observations(WorkerId w) const;
  std::size_t num_workers() const { return estimates_.size(); }

  /// Largest relative deviation between the current estimates and `other`
  /// (max_i |e_i − o_i| / o_i); drives "should we re-code?" decisions.
  double relative_deviation(const Throughputs& other) const;

 private:
  Throughputs estimates_;
  std::vector<std::size_t> counts_;
  double smoothing_;
};

}  // namespace hgc
