// Heterogeneous cluster model (Section VI, Table II).
//
// The paper evaluates on QingCloud VM clusters whose workers differ only in
// vCPU count. The schemes interact with the platform solely through
// per-worker completion times, so the model is: throughput proportional to
// vCPUs (data units per second), plus the runtime effects injected by
// StragglerModel (fluctuation, artificial delay, fail-stop faults).
// Throughput is measured in *datasets per second*: a worker with throughput
// w processing a fraction f of the dataset takes f / w seconds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace hgc {

/// One worker VM.
struct WorkerSpec {
  unsigned vcpus = 1;
  double throughput = 1.0;  ///< datasets per second when healthy
};

/// A named, ordered collection of workers.
class Cluster {
 public:
  Cluster(std::string name, std::vector<WorkerSpec> workers);

  /// Build from a (vCPU count → number of workers) histogram, Table II
  /// style. Throughput = vcpus · per_vcpu_rate. Workers are laid out
  /// slowest-first, matching the paper's ordering convention t₁ ≤ … ≤ t_m.
  static Cluster from_vcpu_histogram(
      std::string name,
      const std::vector<std::pair<unsigned, std::size_t>>& histogram,
      double per_vcpu_rate = 1.0);

  const std::string& name() const { return name_; }
  std::size_t size() const { return workers_.size(); }
  const std::vector<WorkerSpec>& workers() const { return workers_; }
  const WorkerSpec& worker(WorkerId w) const;

  /// True per-worker throughputs (datasets/second).
  Throughputs throughputs() const;

  double total_throughput() const;
  double min_throughput() const;
  /// mean(c)/min(c): the paper's predicted heter-aware vs cyclic speedup at
  /// full fault (3.0 for Cluster-A).
  double heterogeneity_ratio() const;

 private:
  std::string name_;
  std::vector<WorkerSpec> workers_;
};

/// Table II presets. Throughput scale: 1.0 dataset/s per vCPU by default so
/// iteration times land in convenient units.
Cluster cluster_a(double per_vcpu_rate = 1.0);  ///< 8 workers
Cluster cluster_b(double per_vcpu_rate = 1.0);  ///< 16 workers
Cluster cluster_c(double per_vcpu_rate = 1.0);  ///< 32 workers
Cluster cluster_d(double per_vcpu_rate = 1.0);  ///< 58 workers

/// All four presets in order.
std::vector<Cluster> paper_clusters(double per_vcpu_rate = 1.0);

/// Synthetic heterogeneous cluster of `workers` machines for beyond-paper
/// scale experiments (named "scale-<workers>"): the worker count splits as
/// evenly as possible across the 2/4/8/12-vCPU classes (remainder to the
/// slowest class), extending Table II's shape to sizes the paper never ran.
/// Shared by bench_engine_scale and the exec grids' scale presets so "10k
/// workers" means the same machine mix everywhere.
Cluster scale_cluster(std::size_t workers, double per_vcpu_rate = 1.0);

}  // namespace hgc
