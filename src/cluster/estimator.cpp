#include "cluster/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hgc {

ThroughputEstimator::ThroughputEstimator(Throughputs initial,
                                         double smoothing)
    : estimates_(std::move(initial)),
      counts_(estimates_.size(), 0),
      smoothing_(smoothing) {
  HGC_REQUIRE(!estimates_.empty(), "need at least one worker");
  HGC_REQUIRE(smoothing_ > 0.0 && smoothing_ <= 1.0,
              "smoothing must lie in (0, 1]");
  for (double e : estimates_)
    HGC_REQUIRE(e > 0.0, "initial estimates must be positive");
}

void ThroughputEstimator::observe(WorkerId w, double work_fraction,
                                  double seconds) {
  HGC_REQUIRE(w < estimates_.size(), "worker id out of range");
  if (!(work_fraction > 0.0) || !(seconds > 0.0) ||
      !std::isfinite(work_fraction) || !std::isfinite(seconds))
    return;  // faulted/idle workers yield no usable sample
  const double observed_rate = work_fraction / seconds;
  if (counts_[w] == 0) {
    estimates_[w] = observed_rate;  // first sample replaces the prior
  } else {
    estimates_[w] =
        smoothing_ * observed_rate + (1.0 - smoothing_) * estimates_[w];
  }
  ++counts_[w];
}

std::size_t ThroughputEstimator::observations(WorkerId w) const {
  HGC_REQUIRE(w < counts_.size(), "worker id out of range");
  return counts_[w];
}

double ThroughputEstimator::relative_deviation(
    const Throughputs& other) const {
  HGC_REQUIRE(other.size() == estimates_.size(), "size mismatch");
  double worst = 0.0;
  for (std::size_t w = 0; w < estimates_.size(); ++w) {
    HGC_REQUIRE(other[w] > 0.0, "reference throughputs must be positive");
    worst = std::max(worst, std::abs(estimates_[w] - other[w]) / other[w]);
  }
  return worst;
}

}  // namespace hgc
