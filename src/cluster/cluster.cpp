#include "cluster/cluster.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace hgc {

Cluster::Cluster(std::string name, std::vector<WorkerSpec> workers)
    : name_(std::move(name)), workers_(std::move(workers)) {
  HGC_REQUIRE(!workers_.empty(), "cluster needs at least one worker");
  for (const WorkerSpec& w : workers_)
    HGC_REQUIRE(w.throughput > 0.0, "worker throughput must be positive");
}

Cluster Cluster::from_vcpu_histogram(
    std::string name,
    const std::vector<std::pair<unsigned, std::size_t>>& histogram,
    double per_vcpu_rate) {
  HGC_REQUIRE(per_vcpu_rate > 0.0, "per-vCPU rate must be positive");
  std::vector<WorkerSpec> workers;
  for (const auto& [vcpus, count] : histogram) {
    HGC_REQUIRE(vcpus > 0, "vCPU count must be positive");
    for (std::size_t i = 0; i < count; ++i)
      workers.push_back({vcpus, per_vcpu_rate * static_cast<double>(vcpus)});
  }
  // Slowest-first ordering (t1 <= ... <= tm in the paper's notation).
  std::stable_sort(workers.begin(), workers.end(),
                   [](const WorkerSpec& a, const WorkerSpec& b) {
                     return a.throughput < b.throughput;
                   });
  return Cluster(std::move(name), std::move(workers));
}

const WorkerSpec& Cluster::worker(WorkerId w) const {
  HGC_REQUIRE(w < workers_.size(), "worker id out of range");
  return workers_[w];
}

Throughputs Cluster::throughputs() const {
  Throughputs c(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w)
    c[w] = workers_[w].throughput;
  return c;
}

double Cluster::total_throughput() const {
  double total = 0.0;
  for (const WorkerSpec& w : workers_) total += w.throughput;
  return total;
}

double Cluster::min_throughput() const {
  double lowest = std::numeric_limits<double>::infinity();
  for (const WorkerSpec& w : workers_) lowest = std::min(lowest, w.throughput);
  return lowest;
}

double Cluster::heterogeneity_ratio() const {
  return total_throughput() / static_cast<double>(size()) / min_throughput();
}

// Table II of the paper: workers per vCPU class.
//   class:      2-vCPU 4-vCPU 8-vCPU 12-vCPU 16-vCPU
//   Cluster-A:     2      2      3      1       0    (8 workers)
//   Cluster-B:     2      4      8      0       2    (16 workers)
//   Cluster-C:     1      4     10     12       5    (32 workers)
//   Cluster-D:     0      4     20     18      16    (58 workers)
Cluster cluster_a(double per_vcpu_rate) {
  return Cluster::from_vcpu_histogram(
      "Cluster-A", {{2, 2}, {4, 2}, {8, 3}, {12, 1}}, per_vcpu_rate);
}

Cluster cluster_b(double per_vcpu_rate) {
  return Cluster::from_vcpu_histogram(
      "Cluster-B", {{2, 2}, {4, 4}, {8, 8}, {16, 2}}, per_vcpu_rate);
}

Cluster cluster_c(double per_vcpu_rate) {
  return Cluster::from_vcpu_histogram(
      "Cluster-C", {{2, 1}, {4, 4}, {8, 10}, {12, 12}, {16, 5}},
      per_vcpu_rate);
}

Cluster cluster_d(double per_vcpu_rate) {
  return Cluster::from_vcpu_histogram(
      "Cluster-D", {{4, 4}, {8, 20}, {12, 18}, {16, 16}}, per_vcpu_rate);
}

std::vector<Cluster> paper_clusters(double per_vcpu_rate) {
  return {cluster_a(per_vcpu_rate), cluster_b(per_vcpu_rate),
          cluster_c(per_vcpu_rate), cluster_d(per_vcpu_rate)};
}

Cluster scale_cluster(std::size_t workers, double per_vcpu_rate) {
  HGC_REQUIRE(workers > 0, "scale cluster needs at least one worker");
  const std::size_t quarter = workers / 4;
  return Cluster::from_vcpu_histogram(
      "scale-" + std::to_string(workers),
      {{2, workers - 3 * quarter}, {4, quarter}, {8, quarter}, {12, quarter}},
      per_vcpu_rate);
}

}  // namespace hgc
