#include "cluster/straggler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hgc {

IterationConditions StragglerModel::draw(std::size_t num_workers,
                                         Rng& rng) const {
  HGC_REQUIRE(num_stragglers <= num_workers,
              "cannot delay more workers than exist");
  HGC_REQUIRE(delay_seconds >= 0.0, "delay must be non-negative");
  HGC_REQUIRE(fluctuation_sigma >= 0.0, "sigma must be non-negative");

  IterationConditions cond;
  cond.speed_factor.assign(num_workers, 1.0);
  cond.delay.assign(num_workers, 0.0);
  cond.faulted.assign(num_workers, false);

  if (fluctuation_sigma > 0.0) {
    for (std::size_t w = 0; w < num_workers; ++w) {
      const double eps = rng.truncated_normal(
          0.0, fluctuation_sigma, -3.0 * fluctuation_sigma,
          3.0 * fluctuation_sigma);
      cond.speed_factor[w] = std::max(0.05, 1.0 + eps);
    }
  }

  if (num_stragglers > 0) {
    const auto victims =
        rng.sample_without_replacement(num_workers, num_stragglers);
    for (std::size_t w : victims) {
      if (fault)
        cond.faulted[w] = true;
      else
        cond.delay[w] += delay_seconds;
    }
  }
  return cond;
}

StragglerProcess::StragglerProcess(StragglerModel model, double persistence,
                                   std::size_t num_workers, Rng rng)
    : model_(model),
      persistence_(persistence),
      num_workers_(num_workers),
      rng_(rng) {
  HGC_REQUIRE(persistence >= 0.0 && persistence <= 1.0,
              "persistence must lie in [0, 1]");
  HGC_REQUIRE(model.num_stragglers <= num_workers,
              "cannot delay more workers than exist");
}

IterationConditions StragglerProcess::next() {
  // Evolve the victim set: each current victim stays with probability
  // `persistence`; departures are replaced by uniform draws from the
  // non-victim population.
  std::vector<WorkerId> surviving;
  for (WorkerId w : victims_)
    if (rng_.bernoulli(persistence_)) surviving.push_back(w);

  std::vector<bool> is_victim(num_workers_, false);
  for (WorkerId w : surviving) is_victim[w] = true;
  while (surviving.size() < model_.num_stragglers) {
    const auto candidate = static_cast<WorkerId>(rng_.uniform_int(
        0, static_cast<std::int64_t>(num_workers_) - 1));
    if (is_victim[candidate]) continue;
    is_victim[candidate] = true;
    surviving.push_back(candidate);
  }
  std::sort(surviving.begin(), surviving.end());
  victims_ = std::move(surviving);

  // Fluctuation stays iid; the victim set supplies the delay/fault targets.
  StragglerModel fluctuation_only = model_;
  fluctuation_only.num_stragglers = 0;
  IterationConditions cond = fluctuation_only.draw(num_workers_, rng_);
  for (WorkerId w : victims_) {
    if (model_.fault)
      cond.faulted[w] = true;
    else
      cond.delay[w] += model_.delay_seconds;
  }
  return cond;
}

Throughputs estimate_throughputs(const Throughputs& truth, double sigma,
                                 Rng& rng) {
  HGC_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  Throughputs estimated(truth.size());
  for (std::size_t w = 0; w < truth.size(); ++w) {
    HGC_REQUIRE(truth[w] > 0.0, "true throughput must be positive");
    const double eps =
        sigma > 0.0
            ? rng.truncated_normal(0.0, sigma, -3.0 * sigma, 3.0 * sigma)
            : 0.0;
    estimated[w] = std::max(0.05 * truth[w], truth[w] * (1.0 + eps));
  }
  return estimated;
}

}  // namespace hgc
