// Straggler and noise injection (Section VI-A: "stragglers are created
// artificially by adding delay to the workers").
//
// Each simulated iteration draws an IterationConditions: a per-worker speed
// factor (transient resource fluctuation), an added delay, and a fail-stop
// flag. The three knobs map one-to-one to the paper's experimental handles:
//   * artificial delay on s random workers  (Fig. 2 x-axis)
//   * fail-stop faults ("delay = infinity") (Fig. 2 rightmost points)
//   * background fluctuation                (always on in real clusters)
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace hgc {

/// Per-iteration runtime conditions for every worker.
struct IterationConditions {
  std::vector<double> speed_factor;  ///< multiplies throughput; ≈1.0
  std::vector<double> delay;         ///< seconds added before the result sends
  std::vector<bool> faulted;         ///< fail-stop: result never arrives

  std::size_t size() const { return speed_factor.size(); }
};

/// Configuration for drawing iteration conditions.
struct StragglerModel {
  /// Number of workers hit by the artificial delay/fault each iteration,
  /// chosen uniformly at random (the paper delays "any s random workers").
  std::size_t num_stragglers = 0;
  /// Added delay in seconds for the chosen workers.
  double delay_seconds = 0.0;
  /// If true the chosen workers fail outright instead of being delayed.
  bool fault = false;
  /// Std-dev of the multiplicative throughput fluctuation applied to every
  /// worker every iteration (truncated to ±3σ, factor floored at 0.05).
  double fluctuation_sigma = 0.0;

  /// Draw conditions for one iteration.
  IterationConditions draw(std::size_t num_workers, Rng& rng) const;
};

/// Throughput-estimation error model (Section V's motivation): the master
/// estimates worker speeds by sampling; estimates drift from the truth by a
/// multiplicative factor (1 + ε), ε ~ N(0, σ²) truncated to ±3σ, with the
/// result floored at 5% of the true value.
Throughputs estimate_throughputs(const Throughputs& truth, double sigma,
                                 Rng& rng);

/// Temporally-correlated straggler process. The paper separates *transient*
/// fluctuation (iid per iteration — StragglerModel::draw) from *consistent*
/// heterogeneity (permanent — the cluster's throughputs). Real stragglers
/// often sit in between: a worker hit by a noisy neighbor stays slow for a
/// while. This process makes each victim persist with probability
/// `persistence` per iteration (0 = iid, matching StragglerModel::draw in
/// distribution; → 1 = near-permanent); departed victims are replaced so the
/// per-iteration victim count stays at num_stragglers.
class StragglerProcess {
 public:
  StragglerProcess(StragglerModel model, double persistence,
                   std::size_t num_workers, Rng rng);

  /// Conditions for the next iteration.
  IterationConditions next();

  /// Current victim set (sorted), for tests and diagnostics.
  const std::vector<WorkerId>& victims() const { return victims_; }

 private:
  StragglerModel model_;
  double persistence_;
  std::size_t num_workers_;
  Rng rng_;
  std::vector<WorkerId> victims_;
};

}  // namespace hgc
