// hgc_sweep — one CLI for every paper figure, ablation, and ad-hoc grid.
//
//   hgc_sweep --grid fig4                    # preset, CSV on stdout
//   hgc_sweep --grid fig2 --threads 1        # serial run, same bytes out
//   hgc_sweep --grid sigma --aggregate seed  # exact merge across seeds
//   hgc_sweep --grid "clusters=A,B;schemes=heter,group;s=1,2;
//              delay_factors=0,2,4;fault=1;fluct=0.05;seeds=1..5;iters=100"
//   (the spec is one argument; shown wrapped here)
//   hgc_sweep --grid scenarios --pivot scenario,scheme,time
//   hgc_sweep --grid fig3 --csv fig3.csv --json fig3.json
//
// Cells run on a work-stealing thread pool (--threads, default = all
// cores); output is bit-identical at any thread count, so `--threads 1`
// and `--threads 64` runs of the same grid diff clean. The run summary
// goes to stderr, keeping stdout pure data. Observability is equally
// out-of-band: --metrics-out / --metrics-interval / --trace-out /
// --progress never change a byte of the CSV/JSON results (CI diffs the
// two).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "exec/figures.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: hgc_sweep --grid <preset|spec> [options]\n\n"
        "options:\n"
        "  --grid NAME|SPEC   preset name (see --list) or a key=value spec:\n"
        "                     clusters=A,B;schemes=heter,group;s=1,2;\n"
        "                     delay_factors=0,2;fault=1;fluct=0.05;\n"
        "                     sigmas=0,0.2;seeds=1..5;iters=100;\n"
        "                     scenarios=static,churn,trace;trace=file.csv;\n"
        "                     scenario_file=examples/churn_drift.scn\n"
        "  --scenario-file F  add a scenario-DSL file as one point on the\n"
        "                     scenario axis (repeatable; works with presets\n"
        "                     and specs alike — see README 'Scenario DSL')\n"
        "  --iters N          override the grid's iteration count\n"
        "  --threads N        worker threads (default: all cores)\n"
        "  --kernel-backend B force the linalg kernel backend: scalar,\n"
        "                     avx2, or neon (default: best the host\n"
        "                     supports; HGC_KERNEL_BACKEND works too).\n"
        "                     Output is byte-identical either way — the\n"
        "                     flag trades speed, never results\n"
        "  --cache/--no-cache share constructed schemes across cells and\n"
        "                     cache decoding coefficients per cell (default\n"
        "                     on; output is byte-identical either way; hit\n"
        "                     rates go to stderr; applies to the built-in\n"
        "                     static/churn/trace cell bodies — custom-\n"
        "                     bodied presets like fig4 bypass it)\n"
        "  --csv PATH         write CSV to PATH ('-' = stdout; the default)\n"
        "  --json PATH        write JSON to PATH ('-' = stdout)\n"
        "  --metrics-out F    write the merged metrics-registry snapshot\n"
        "                     (cache hit/miss, decode solves, per-cell\n"
        "                     timing) as JSON to F after the run\n"
        "  --metrics-interval S\n"
        "                     sample the metrics registry every S seconds\n"
        "                     on a background thread (default off; read-\n"
        "                     only, results stay byte-identical)\n"
        "  --metrics-log F    append each sample as one JSON line to F\n"
        "                     (JSONL; requires --metrics-interval; analyze\n"
        "                     with hgc_obs diff/top)\n"
        "  --trace-out F      record a dual-clock Chrome trace_event file\n"
        "                     to F: wall-clock sweep/solve spans plus one\n"
        "                     virtual-clock track per cell (open in\n"
        "                     chrome://tracing or ui.perfetto.dev)\n"
        "  --progress         report cells-done/total, cells/sec and ETA\n"
        "                     to stderr while the sweep runs (off by\n"
        "                     default; stdout is never touched)\n"
        "  --pivot R,C,M      print a pivot table: rows=axis R, cols=axis\n"
        "                     C, cells=metric M\n"
        "  --aggregate AXIS   collapse AXIS (e.g. seed) by exact merge\n"
        "  --list             list presets and exit\n";
}

/// Write `emit(os)` to `path`, with "-" meaning stdout.
template <typename Emit>
void write_output(const std::string& path, Emit emit) {
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream file(path);
  if (!file) throw std::invalid_argument("cannot open for write: " + path);
  emit(file);
}

/// --progress: a background thread rewriting one stderr line from the
/// metrics registry every half second — cells done / total (the registry's
/// sweep.cells.total gauge, falling back to the grid size), throughput
/// from the done counter, and the ETA those two imply. stdout is never
/// touched, and the thread joins before any output is written, so data
/// and progress cannot interleave.
class ProgressReporter {
 public:
  explicit ProgressReporter(std::size_t total) : total_(total) {
    thread_ = std::thread([this] { loop(); });
  }
  ~ProgressReporter() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
    if (printed_) std::cerr << "\n";
  }

 private:
  void loop() {
    // lint:allow(nondeterministic-seed): progress ETA on stderr; never feeds sim state or output
    const auto start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      cv_.wait_for(lock, std::chrono::milliseconds(500),
                   [this] { return stopped_; });
      if (stopped_) break;
      lock.unlock();
      const hgc::obs::Snapshot snap = hgc::obs::Registry::global().snapshot();
      const std::uint64_t done = snap.counter("sweep.cells.done");
      const double total_gauge = snap.gauge("sweep.cells.total");
      const std::size_t total =
          total_gauge > 0 ? static_cast<std::size_t>(total_gauge) : total_;
      const double elapsed =
          // lint:allow(nondeterministic-seed): progress ETA on stderr; never feeds sim state or output
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double rate =
          elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0;
      std::cerr << "\r# progress: " << done << "/" << total << " cells, "
                << static_cast<int>(elapsed) << "s elapsed";
      if (rate > 0 && done > 0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ", %.1f cells/s", rate);
        std::cerr << buf;
        if (done < total)
          std::cerr << ", ETA "
                    << static_cast<int>(
                           static_cast<double>(total - done) / rate + 0.5)
                    << "s";
      }
      std::cerr << "    " << std::flush;  // pad over a shrinking line
      printed_ = true;
      lock.lock();
    }
  }

  std::size_t total_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  bool printed_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hgc;
  try {
    Args args(argc, argv);
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (args.get_bool("list", false)) {
      for (const std::string& name : exec::figure_names())
        std::cout << name << ": " << exec::make_figure(name).description
                  << "\n";
      return 0;
    }
    const std::string grid_arg = args.get("grid", "");
    const auto iters = static_cast<std::size_t>(args.get_int("iters", 0));
    const auto threads =
        static_cast<std::size_t>(args.get_int("threads", 0));
    const std::string csv_path = args.get("csv", "");
    const std::string json_path = args.get("json", "");
    const std::string pivot_spec = args.get("pivot", "");
    const std::string aggregate_axis = args.get("aggregate", "");
    const std::vector<std::string> scenario_files =
        args.get_list("scenario-file");
    const std::string metrics_path = args.get("metrics-out", "");
    const double metrics_interval = args.get_double("metrics-interval", 0.0);
    const std::string metrics_log_path = args.get("metrics-log", "");
    const std::string trace_path = args.get("trace-out", "");
    const bool progress = args.get_bool("progress", false);
    bool use_cache = args.get_bool("cache", true);
    if (args.get_bool("no-cache", false)) use_cache = false;
    const std::string backend_arg = args.get("kernel-backend", "");
    args.check_unused();
    if (!backend_arg.empty()) {
      // Fail loudly on a bad name or an unavailable backend: the flag
      // exists for CI's cross-backend byte-diff, where a silent fallback
      // would diff a backend against itself and prove nothing.
      const std::optional<kernels::Backend> backend =
          kernels::parse_backend(backend_arg);
      if (!backend.has_value())
        throw std::invalid_argument("--kernel-backend '" + backend_arg +
                                    "' is not a backend name "
                                    "(scalar|avx2|neon)");
      if (!kernels::set_backend(*backend))
        throw std::invalid_argument("--kernel-backend " + backend_arg +
                                    " is not available on this build/host");
    }
    if (grid_arg.empty()) {
      print_usage(std::cerr);
      return 2;
    }

    exec::FigureSweep figure;
    if (grid_arg.find('=') != std::string::npos) {
      figure.name = "custom";
      figure.description = "ad-hoc grid spec";
      // Apply --iters and --scenario-file inside the spec so the parser
      // builds scenario schedules (churn horizon, demo trace) against the
      // overridden count, and so an explicit scenarios= list keeps its
      // points when files append after it.
      std::string spec = grid_arg;
      if (iters != 0) spec += ";iters=" + std::to_string(iters);
      for (const std::string& path : scenario_files)
        spec += ";scenario_file=" + path;
      figure.grid = exec::parse_grid_spec(spec);
    } else {
      figure = exec::make_figure(grid_arg, iters);
      // The custom-bodied presets (fig4, loss, ...) run their own cell
      // functions, which never read the scenario axis — silently accepting
      // a file the run then ignores is the same bug class as a dropped
      // trace= path.
      if (!scenario_files.empty() && figure.fn)
        throw std::invalid_argument(
            "--scenario-file has no effect on preset '" + grid_arg +
            "': its custom cell body ignores the scenario axis; use a "
            "built-in-body preset (fig2, fig3, fig5, sigma, scenarios) or "
            "a key=value --grid spec");
      // Each file is one more point on the preset's scenario axis
      // (replacing a static-only axis, appending after a multi-point one).
      exec::append_scenario_files(figure.grid, scenario_files);
    }

    // Observability: the metrics registry is always on in the CLI (it
    // feeds the stderr summary and --progress); tracing only when asked.
    // Both are out of band — the results tables are byte-identical with
    // any combination of these flags (CI diffs a traced run against a
    // plain one).
    obs::set_metrics_enabled(true);
    if (!trace_path.empty()) obs::set_trace_enabled(true);
    // Resolve the kernel backend now (flag > env > cpuid) so the gauge is
    // recorded after metrics exist and the summary below reports what
    // actually served the run.
    const kernels::Backend kernel_backend = kernels::active_backend();
    obs::Registry::global()
        .gauge("kernels.backend")
        .set(static_cast<double>(static_cast<int>(kernel_backend)));

    exec::SweepOptions options;
    options.threads = threads;
    // Both caches are result-transparent (same bytes out either way); the
    // hit rates land on stderr so stdout stays pure data.
    SchemeCache scheme_cache;
    if (use_cache) {
      options.scheme_cache = &scheme_cache;
      options.decoding_cache_capacity = 256;
    }
    obs::Snapshot metrics;
    options.metrics_snapshot = &metrics;
    std::ofstream metrics_log;
    if (!metrics_log_path.empty()) {
      if (metrics_interval <= 0.0)
        throw std::invalid_argument(
            "--metrics-log needs --metrics-interval to produce samples");
      metrics_log.open(metrics_log_path);
      if (!metrics_log)
        throw std::invalid_argument("cannot open for write: " +
                                    metrics_log_path);
      options.metrics_log = &metrics_log;
    }
    options.metrics_interval_seconds = metrics_interval;
    const std::size_t resolved_threads =
        threads != 0 ? threads : exec::ThreadPool::default_threads();

    std::optional<ProgressReporter> reporter;
    if (progress) reporter.emplace(figure.grid.num_cells());
    // lint:allow(nondeterministic-seed): wall-clock run summary on stderr only
    const auto start = std::chrono::steady_clock::now();
    exec::ResultTable table = exec::run_figure(figure, options);
    const double seconds =
        // lint:allow(nondeterministic-seed): wall-clock run summary on stderr only
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (reporter) reporter->stop();
    if (!aggregate_axis.empty())
      table = table.aggregate_over(aggregate_axis);

    std::cerr << "# " << figure.name << ": "
              << figure.grid.num_cells() << " cells on "
              << resolved_threads << " thread(s) in " << seconds << "s\n";
    std::cerr << "# kernel backend: " << kernels::backend_name(kernel_backend)
              << "\n";
    if (use_cache) {
      const std::uint64_t sh = metrics.counter("scheme_cache.hits");
      const std::uint64_t sm = metrics.counter("scheme_cache.misses");
      const std::uint64_t dh = metrics.counter("decode_cache.hits");
      const std::uint64_t dm = metrics.counter("decode_cache.misses");
      if (sh + sm + dh + dm == 0) {
        // The custom-bodied presets (fig4, table2, loss, ...) run their own
        // cell functions, which do not go through the cached experiment
        // path — say so instead of printing misleading 0-traffic rates.
        std::cerr << "# caches: unused (this preset's custom cell body "
                     "bypasses the caching layer)\n";
      } else {
        const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
          const std::uint64_t total = hits + misses;
          return total == 0 ? 0.0
                            : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(total);
        };
        std::cerr << "# scheme cache: " << sh << " hits / " << sm
                  << " misses (" << rate(sh, sm) << "% hit rate, "
                  << scheme_cache.size() << " schemes constructed)\n";
        std::cerr << "# decode cache: " << dh << " hits / " << dm
                  << " misses (" << rate(dh, dm) << "% hit rate)\n";
      }
    }
    if (!metrics_path.empty())
      write_output(metrics_path,
                   [&](std::ostream& os) { metrics.write_json(os); });
    if (!trace_path.empty()) {
      obs::set_trace_enabled(false);
      // write_json itself warns on stderr when events were dropped.
      write_output(trace_path, [&](std::ostream& os) {
        obs::Tracer::global().write_json(os);
      });
    }

    bool wrote = false;
    if (!csv_path.empty()) {
      write_output(csv_path, [&](std::ostream& os) { table.to_csv(os); });
      wrote = true;
    }
    if (!json_path.empty()) {
      write_output(json_path, [&](std::ostream& os) { table.to_json(os); });
      wrote = true;
    }
    if (!pivot_spec.empty()) {
      std::istringstream in(pivot_spec);
      std::string row_axis, col_axis, metric;
      if (!std::getline(in, row_axis, ',') ||
          !std::getline(in, col_axis, ',') || !std::getline(in, metric))
        throw std::invalid_argument("--pivot wants row,col,metric");
      table.pivot(row_axis, col_axis, metric).print(std::cout);
      wrote = true;
    }
    if (!wrote) table.to_csv(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hgc_sweep: " << e.what() << "\n";
    return 1;
  }
}
