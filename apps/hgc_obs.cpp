// hgc_obs — offline tooling for metrics snapshots.
//
//   hgc_obs merge merged.json shard0.json shard1.json ...
//   hgc_obs diff before.json after.json
//   hgc_obs top 10 metrics.json
//   hgc_obs convert metrics.json metrics.prom     # and back
//
// The fleet story: every process (or shard of a split sweep) writes its own
// snapshot with --metrics-out; `merge` folds them with Snapshot::merge, so
// counters and histogram buckets sum exactly and the totals are identical
// to an unsplit run (CI asserts this on a split fig3 grid). `diff` turns
// two snapshots of the same process into per-second rates using the
// snapshot timestamps; `top` ranks the biggest counters and time sinks;
// `convert` moves between the exact JSON format and Prometheus text
// exposition (either direction — input format is sniffed, output format
// follows the file extension: .prom/.txt = Prometheus, else JSON).
//
// File arguments accept '-' for stdin/stdout. Subcommands and positional
// arguments are deliberate here (unlike the --flag-only sweep CLIs):
// merge's variadic input list reads naturally as a file list.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using hgc::obs::Snapshot;

void print_usage(std::ostream& os) {
  os << "usage: hgc_obs <command> [args]\n\n"
        "commands:\n"
        "  merge OUT IN [IN...]  fold snapshots into one (counters and\n"
        "                        histogram buckets sum exactly; gauges keep\n"
        "                        the freshest value; stats/quantiles merge)\n"
        "  diff OLD NEW          counter deltas between two snapshots of\n"
        "                        one process, with per-second rates from\n"
        "                        the snapshot timestamps\n"
        "  top [N] IN            the N largest counters and the stats with\n"
        "                        the most accumulated time (default N=10)\n"
        "  convert IN OUT        rewrite between JSON and Prometheus text\n"
        "                        (input sniffed; OUT ending in .prom/.txt\n"
        "                        selects Prometheus, anything else JSON)\n\n"
        "IN/OUT accept '-' for stdin/stdout. Inputs may be JSON snapshots\n"
        "(--metrics-out), recorder JSONL lines, or Prometheus exposition\n"
        "written by this tool.\n";
}

std::string slurp(const std::string& path) {
  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream file(path);
    if (!file) throw std::invalid_argument("cannot open: " + path);
    buf << file.rdbuf();
  }
  return buf.str();
}

/// Sniff the format: snapshots are JSON objects; anything else is treated
/// as Prometheus text. A recorder JSONL file parses too — each line is a
/// complete snapshot, folded left-to-right (useful for `top` over a log).
Snapshot read_snapshot(const std::string& path) {
  const std::string text = slurp(path);
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos)
    throw std::invalid_argument("empty snapshot input: " + path);
  if (text[first] != '{') {
    std::istringstream is(text);
    std::vector<std::string> skipped;
    Snapshot snap = Snapshot::read_prometheus(is, &skipped);
    for (const std::string& name : skipped)
      std::cerr << "hgc_obs: note: quantile summary '" << name
                << "' cannot be reconstructed from Prometheus text; "
                   "dropped\n";
    return snap;
  }
  // One object, or JSONL (one object per line): parse the first line; if
  // more lines follow, treat each as a snapshot of the same process over
  // time and keep the last one per gauge/stat while summing nothing —
  // recorder samples are cumulative, so "latest wins" is just the final
  // line. A multi-line pretty-printed object lands in the single-parse
  // branch because its first line alone fails to parse.
  const std::size_t newline = text.find('\n', first);
  if (newline != std::string::npos &&
      text.find_first_not_of(" \t\r\n", newline) != std::string::npos) {
    try {
      Snapshot last;
      bool any = false;
      std::istringstream lines(text);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        last = Snapshot::read_json(line);
        any = true;
      }
      if (any) return last;
    } catch (const std::exception&) {
      // Not JSONL — fall through to whole-document parse.
    }
  }
  return Snapshot::read_json(text);
}

bool prometheus_extension(const std::string& path) {
  const auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".prom") || ends_with(".txt");
}

void write_snapshot(const Snapshot& snap, const std::string& path) {
  const auto emit = [&snap, &path](std::ostream& os) {
    if (prometheus_extension(path))
      snap.write_prometheus(os);
    else
      snap.write_json(os);
  };
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream file(path);
  if (!file) throw std::invalid_argument("cannot open for write: " + path);
  emit(file);
}

int cmd_merge(const std::vector<std::string>& args) {
  if (args.size() < 2)
    throw std::invalid_argument("merge wants OUT and at least one IN");
  Snapshot merged = read_snapshot(args[1]);
  for (std::size_t i = 2; i < args.size(); ++i)
    merged.merge(read_snapshot(args[i]));
  write_snapshot(merged, args[0]);
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) throw std::invalid_argument("diff wants OLD and NEW");
  const Snapshot before = read_snapshot(args[0]);
  const Snapshot after = read_snapshot(args[1]);
  const double seconds =
      static_cast<double>(after.unix_ns - before.unix_ns) * 1e-9;
  if (seconds > 0)
    std::printf("# interval: %.3fs\n", seconds);
  else
    std::printf("# interval: unknown (snapshots carry no timestamps)\n");
  std::printf("%-40s %14s %14s %14s %12s\n", "counter", "old", "new", "delta",
              "rate/s");
  // Union of names, in the sorted order the maps already keep.
  std::vector<std::string> names;
  for (const auto& [name, value] : before.counters) names.push_back(name);
  for (const auto& [name, value] : after.counters)
    if (!before.counters.count(name)) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::uint64_t oldv = before.counter(name);
    const std::uint64_t newv = after.counter(name);
    const double delta =
        static_cast<double>(newv) - static_cast<double>(oldv);
    std::printf("%-40s %14llu %14llu %+14.0f", name.c_str(),
                static_cast<unsigned long long>(oldv),
                static_cast<unsigned long long>(newv), delta);
    if (seconds > 0)
      std::printf(" %12.2f", delta / seconds);
    else
      std::printf(" %12s", "-");
    std::printf("\n");
  }
  return 0;
}

int cmd_top(const std::vector<std::string>& args) {
  std::size_t n = 10;
  std::string path;
  if (args.size() == 1) {
    path = args[0];
  } else if (args.size() == 2) {
    n = static_cast<std::size_t>(std::stoul(args[0]));
    path = args[1];
  } else {
    throw std::invalid_argument("top wants [N] IN");
  }
  const Snapshot snap = read_snapshot(path);

  std::vector<std::pair<std::string, std::uint64_t>> counters(
      snap.counters.begin(), snap.counters.end());
  std::stable_sort(counters.begin(), counters.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::printf("top counters:\n");
  for (std::size_t i = 0; i < std::min(n, counters.size()); ++i)
    std::printf("  %-40s %14llu\n", counters[i].first.c_str(),
                static_cast<unsigned long long>(counters[i].second));

  std::vector<std::pair<std::string, const hgc::RunningStats*>> stats;
  for (const auto& [name, s] : snap.stats) stats.emplace_back(name, &s);
  std::stable_sort(stats.begin(), stats.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->sum() > b.second->sum();
                   });
  if (!stats.empty()) std::printf("top time sinks (stat sums):\n");
  for (std::size_t i = 0; i < std::min(n, stats.size()); ++i)
    std::printf("  %-40s sum %.6g over %llu obs (mean %.6g)\n",
                stats[i].first.c_str(), stats[i].second->sum(),
                static_cast<unsigned long long>(stats[i].second->count()),
                stats[i].second->mean());
  return 0;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() != 2) throw std::invalid_argument("convert wants IN OUT");
  write_snapshot(read_snapshot(args[0]), args[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "--help" || args[0] == "help") {
      print_usage(args.empty() ? std::cerr : std::cout);
      return args.empty() ? 2 : 0;
    }
    const std::string command = args[0];
    args.erase(args.begin());
    if (command == "merge") return cmd_merge(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "top") return cmd_top(args);
    if (command == "convert") return cmd_convert(args);
    print_usage(std::cerr);
    throw std::invalid_argument("unknown command: " + command);
  } catch (const std::exception& e) {
    std::cerr << "hgc_obs: " << e.what() << "\n";
    return 1;
  }
}
